//! Data-oriented DAG storage and bounded-repair longest path.
//!
//! [`Digraph`] optimizes for cheap edge edits; the annealing hot path
//! wants the opposite trade: a fixed edge structure scanned millions of
//! times with mutable *weights*. [`DenseDag`] stores the graph in CSR
//! form — flat `u32` slabs for both edge directions, structure-of-arrays
//! node and edge attributes — so a longest-path relaxation touches
//! contiguous memory and no per-node `Vec` headers.
//!
//! On top of it, [`IncrementalLongestPath`] maintains completion labels
//! under *bounded repair*: after a delta that changes the weights or
//! local edge structure around a touched node set `T`, only a suffix
//! of a maintained topological order (or the descendant cone of `T`)
//! is relabeled, with a fall-back to a full Kahn pass when the order
//! cannot absorb the change. Three repair flavors coexist:
//!
//! * [`IncrementalLongestPath::repair`] — cone-local Kahn over the
//!   descendant cone of the seeds (seeded through a [`FixedBitSet`]
//!   frontier), bounded by a relaxation threshold;
//! * [`IncrementalLongestPath::repair_ordered`] — a lazily *checked*
//!   forward sweep over the maintained order that detects on the fly
//!   when the order no longer serializes the edges and falls back;
//! * [`IncrementalLongestPath::sweep_certified`] — a check-free sweep
//!   over the order suffix from the first seed, for callers that have
//!   already certified order validity (via
//!   [`IncrementalLongestPath::reposition`] +
//!   [`IncrementalLongestPath::order_pos`] edge verification). This is
//!   the annealing hot path: one branch-light pass, no per-node
//!   bookkeeping.
//!
//! All label changes are journaled, so a rejected move rolls back to
//! bit-identical labels — including the maintained order, which is
//! snapshotted once per journal window.
//!
//! # Determinism
//!
//! Every completion label is `w(v) + max(0, max over in-edges (u,v):
//! comp(u) + w(u,v))` — a maximum over a finite candidate set. IEEE-754
//! `max` is order-independent in *value* for finite inputs, so the
//! label fixpoint on a DAG is unique: any relaxation schedule that
//! processes every node whose candidate set changed (cone, checked
//! sweep, certified suffix sweep, or full pass) lands on the same
//! bits. A sweep may also re-relax *unchanged* nodes; that rewrites
//! their labels with identical bits. The critical-path predecessor of
//! each node — chosen by a strict `>` scan over the node's in-edges in
//! storage order — is reproduced identically as well because it
//! depends only on the node's own candidate sequence.

use crate::bitset::FixedBitSet;
use crate::longest_path::LongestPath;
use crate::{Digraph, GraphError, NodeId};

/// Sentinel for "no critical predecessor" in the dense label arrays.
const NO_PRED: u32 = u32::MAX;

/// A directed graph in CSR (compressed sparse row) form with mutable
/// node and edge weights but a fixed edge structure.
///
/// Edges keep their insertion index (*edge id*); both the out- and the
/// in-adjacency slabs preserve insertion order, so traversals enumerate
/// neighbours exactly as [`Digraph`] would after the same `add_edge`
/// sequence. Parallel edges and cycles are representable (cycles are
/// rejected by [`DenseDag::longest_path`], not by construction).
///
/// # Examples
///
/// ```
/// use rdse_graph::DenseDag;
///
/// # fn main() -> Result<(), rdse_graph::GraphError> {
/// let g = DenseDag::from_edges(3, &[(0, 1, 2.0), (1, 2, 3.0)], &[1.0, 1.0, 1.0])?;
/// assert_eq!(g.longest_path()?.makespan(), 8.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseDag {
    n: usize,
    out_start: Vec<u32>,
    out_target: Vec<u32>,
    out_eid: Vec<u32>,
    in_start: Vec<u32>,
    in_source: Vec<u32>,
    in_eid: Vec<u32>,
    edge_from: Vec<u32>,
    edge_to: Vec<u32>,
    edge_w: Vec<f64>,
    node_w: Vec<f64>,
}

impl DenseDag {
    /// Builds a dense graph over nodes `0..n` from an edge list.
    ///
    /// The edge id of `edges[i]` is `i`; adjacency slabs preserve the
    /// relative order of `edges` per source and per target.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] for invalid endpoints and
    /// [`GraphError::SelfLoop`] if any edge has equal endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `node_weights.len() != n`.
    pub fn from_edges(
        n: usize,
        edges: &[(u32, u32, f64)],
        node_weights: &[f64],
    ) -> Result<Self, GraphError> {
        assert_eq!(
            node_weights.len(),
            n,
            "node weight slice must match node count"
        );
        for &(u, v, _) in edges {
            for node in [u, v] {
                if node as usize >= n {
                    return Err(GraphError::NodeOutOfBounds {
                        node: NodeId(node),
                        n_nodes: n,
                    });
                }
            }
            if u == v {
                return Err(GraphError::SelfLoop(NodeId(u)));
            }
        }
        let m = edges.len();
        let mut out_start = vec![0u32; n + 1];
        let mut in_start = vec![0u32; n + 1];
        for &(u, v, _) in edges {
            out_start[u as usize + 1] += 1;
            in_start[v as usize + 1] += 1;
        }
        for i in 0..n {
            out_start[i + 1] += out_start[i];
            in_start[i + 1] += in_start[i];
        }
        let mut out_cursor: Vec<u32> = out_start[..n].to_vec();
        let mut in_cursor: Vec<u32> = in_start[..n].to_vec();
        let mut out_target = vec![0u32; m];
        let mut out_eid = vec![0u32; m];
        let mut in_source = vec![0u32; m];
        let mut in_eid = vec![0u32; m];
        for (eid, &(u, v, _)) in edges.iter().enumerate() {
            let oc = &mut out_cursor[u as usize];
            out_target[*oc as usize] = v;
            out_eid[*oc as usize] = eid as u32;
            *oc += 1;
            let ic = &mut in_cursor[v as usize];
            in_source[*ic as usize] = u;
            in_eid[*ic as usize] = eid as u32;
            *ic += 1;
        }
        Ok(DenseDag {
            n,
            out_start,
            out_target,
            out_eid,
            in_start,
            in_source,
            in_eid,
            edge_from: edges.iter().map(|e| e.0).collect(),
            edge_to: edges.iter().map(|e| e.1).collect(),
            edge_w: edges.iter().map(|e| e.2).collect(),
            node_w: node_weights.to_vec(),
        })
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// Number of edges (parallel edges counted individually).
    pub fn n_edges(&self) -> usize {
        self.edge_w.len()
    }

    /// Weight of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[inline]
    pub fn node_weight(&self, v: u32) -> f64 {
        self.node_w[v as usize]
    }

    /// Sets the weight of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[inline]
    pub fn set_node_weight(&mut self, v: u32, weight: f64) {
        self.node_w[v as usize] = weight;
    }

    /// Weight of edge `eid`.
    ///
    /// # Panics
    ///
    /// Panics if `eid` is out of bounds.
    #[inline]
    pub fn edge_weight(&self, eid: u32) -> f64 {
        self.edge_w[eid as usize]
    }

    /// Sets the weight of edge `eid`.
    ///
    /// # Panics
    ///
    /// Panics if `eid` is out of bounds.
    #[inline]
    pub fn set_edge_weight(&mut self, eid: u32, weight: f64) {
        self.edge_w[eid as usize] = weight;
    }

    /// Endpoints `(from, to)` of edge `eid`.
    ///
    /// # Panics
    ///
    /// Panics if `eid` is out of bounds.
    #[inline]
    pub fn edge_endpoints(&self, eid: u32) -> (u32, u32) {
        (self.edge_from[eid as usize], self.edge_to[eid as usize])
    }

    /// Out-edges of `v` as `(target, edge id)`, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[inline]
    pub fn out_edges(&self, v: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        let lo = self.out_start[v as usize] as usize;
        let hi = self.out_start[v as usize + 1] as usize;
        self.out_target[lo..hi]
            .iter()
            .copied()
            .zip(self.out_eid[lo..hi].iter().copied())
    }

    /// In-edges of `v` as `(source, edge id)`, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[inline]
    pub fn in_edges(&self, v: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        let lo = self.in_start[v as usize] as usize;
        let hi = self.in_start[v as usize + 1] as usize;
        self.in_source[lo..hi]
            .iter()
            .copied()
            .zip(self.in_eid[lo..hi].iter().copied())
    }

    /// Converts back to an edit-friendly [`Digraph`] with the same edge
    /// insertion order (edge ids become insertion ranks).
    pub fn to_digraph(&self) -> Digraph {
        let mut g = Digraph::new(self.n);
        for eid in 0..self.edge_w.len() {
            g.add_edge(
                NodeId(self.edge_from[eid]),
                NodeId(self.edge_to[eid]),
                self.edge_w[eid],
            )
            .expect("DenseDag edges are valid by construction");
        }
        g
    }

    /// Topological order with ties broken by node index, mirroring
    /// [`crate::topo::topo_sort`] exactly.
    fn topo_order(&self) -> Result<Vec<u32>, GraphError> {
        let n = self.n;
        let mut in_deg: Vec<u32> = (0..n)
            .map(|v| self.in_start[v + 1] - self.in_start[v])
            .collect();
        let mut frontier: Vec<u32> = (0..n as u32).filter(|&v| in_deg[v as usize] == 0).collect();
        frontier.sort_unstable_by_key(|&v| std::cmp::Reverse(v));
        let mut order = Vec::with_capacity(n);
        while let Some(v) = frontier.pop() {
            order.push(v);
            for (s, _) in self.out_edges(v) {
                let d = &mut in_deg[s as usize];
                *d -= 1;
                if *d == 0 {
                    let pos = frontier
                        .binary_search_by_key(&std::cmp::Reverse(s), |&x| std::cmp::Reverse(x));
                    let pos = pos.unwrap_or_else(|p| p);
                    frontier.insert(pos, s);
                }
            }
        }
        if order.len() != n {
            let on_cycle = (0..n)
                .find(|&v| in_deg[v] > 0)
                .expect("cycle implies a node with nonzero residual in-degree");
            return Err(GraphError::Cycle {
                on_cycle: NodeId(on_cycle as u32),
            });
        }
        Ok(order)
    }

    /// Longest path of the DAG, bit-identical to
    /// [`crate::longest_path::dag_longest_path`] on a [`Digraph`] built
    /// with the same edge insertion sequence (same labels, same
    /// critical predecessors, same terminal tie-breaks).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Cycle`] if the graph is not acyclic.
    pub fn longest_path(&self) -> Result<LongestPath, GraphError> {
        let order = self.topo_order()?;
        let n = self.n;
        let mut completion = vec![0.0_f64; n];
        let mut critical_pred: Vec<Option<NodeId>> = vec![None; n];
        let mut makespan = 0.0_f64;
        let mut terminal = None;
        for &v in &order {
            let mut best = 0.0_f64;
            let mut best_pred = None;
            // Mirror the reference enumeration: per predecessor *entry*,
            // scan all of that predecessor's out-edges towards `v`, so
            // parallel-edge tie-breaks agree with `dag_longest_path`.
            for (p, _) in self.in_edges(v) {
                for (s, eid) in self.out_edges(p) {
                    if s == v {
                        let cand = completion[p as usize] + self.edge_w[eid as usize];
                        if cand > best {
                            best = cand;
                            best_pred = Some(NodeId(p));
                        }
                    }
                }
            }
            completion[v as usize] = best + self.node_w[v as usize];
            critical_pred[v as usize] = best_pred;
            if completion[v as usize] > makespan {
                makespan = completion[v as usize];
                terminal = Some(NodeId(v));
            }
        }
        Ok(LongestPath::from_parts(
            completion,
            critical_pred,
            makespan,
            terminal,
        ))
    }
}

/// A graph view the incremental longest path can relax over.
///
/// The two traversal methods take generic closures (monomorphized, no
/// virtual dispatch on the hot path) and must enumerate each edge
/// exactly once per direction, in a deterministic order. `for_each_in`
/// also yields the edge weight, since the pull-style relaxation only
/// ever needs weights on incoming edges.
pub trait RepairGraph {
    /// Number of nodes (labels are indexed `0..n_nodes()`).
    fn n_nodes(&self) -> usize;
    /// Weight of node `v`.
    fn node_weight(&self, v: u32) -> f64;
    /// Calls `f(target)` for every out-edge of `v`.
    fn for_each_out<F: FnMut(u32)>(&self, v: u32, f: F);
    /// Calls `f(source, weight)` for every in-edge of `v`.
    fn for_each_in<F: FnMut(u32, f64)>(&self, v: u32, f: F);
    /// Number of in-edges of `v`. The default counts via
    /// [`for_each_in`](Self::for_each_in); implementations with a
    /// closed form (e.g. CSR extents plus marker bits) should override
    /// it — [`IncrementalLongestPath`]'s full pass derives its Kahn
    /// in-degrees from this, skipping a whole edge enumeration.
    #[inline]
    fn in_degree(&self, v: u32) -> u32 {
        let mut d = 0u32;
        self.for_each_in(v, |_, _| d += 1);
        d
    }
}

impl RepairGraph for DenseDag {
    #[inline]
    fn n_nodes(&self) -> usize {
        self.n
    }

    #[inline]
    fn node_weight(&self, v: u32) -> f64 {
        self.node_w[v as usize]
    }

    #[inline]
    fn for_each_out<F: FnMut(u32)>(&self, v: u32, mut f: F) {
        let lo = self.out_start[v as usize] as usize;
        let hi = self.out_start[v as usize + 1] as usize;
        for &t in &self.out_target[lo..hi] {
            f(t);
        }
    }

    #[inline]
    fn for_each_in<F: FnMut(u32, f64)>(&self, v: u32, mut f: F) {
        let lo = self.in_start[v as usize] as usize;
        let hi = self.in_start[v as usize + 1] as usize;
        for (&u, &eid) in self.in_source[lo..hi].iter().zip(&self.in_eid[lo..hi]) {
            f(u, self.edge_w[eid as usize]);
        }
    }

    #[inline]
    fn in_degree(&self, v: u32) -> u32 {
        self.in_start[v as usize + 1] - self.in_start[v as usize]
    }
}

/// Counters describing how the incremental longest path ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepairStats {
    /// Bounded repairs that completed without falling back.
    pub repairs: u64,
    /// Full Kahn passes (explicit [`IncrementalLongestPath::full`]
    /// calls plus threshold fall-backs during repair).
    pub full_passes: u64,
    /// Repairs whose cone exceeded the threshold and fell back to a
    /// full pass (a subset of `full_passes`).
    pub fallbacks: u64,
    /// Largest repair cone relabeled by a bounded repair.
    pub max_cone: u64,
    /// Total nodes across all bounded-repair cones (for mean size).
    pub cone_nodes: u64,
}

impl RepairStats {
    /// Mean bounded-repair cone size (0 when no repairs ran).
    pub fn mean_cone(&self) -> f64 {
        if self.repairs == 0 {
            0.0
        } else {
            self.cone_nodes as f64 / self.repairs as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct JournalEntry {
    node: u32,
    comp: f64,
    pred: u32,
}

/// Incrementally maintained longest-path labels with bounded repair.
///
/// The structure owns one completion label and one critical-predecessor
/// per node, kept consistent with some [`RepairGraph`] by the caller:
///
/// 1. [`full`](Self::full) computes labels from scratch (Kahn);
/// 2. after a delta touching node set `T`, [`repair`](Self::repair)
///    relabels only the descendant cone of `T` — or the whole graph if
///    the cone exceeds the [threshold](Self::set_threshold);
/// 3. [`rollback`](Self::rollback) undoes the label changes of the most
///    recent `full`/`repair` call (each call journals old labels), so a
///    rejected annealing move costs one replay instead of a recompute.
///
/// Labels after `repair` are bit-identical to a full recompute; see the
/// [module docs](self) for the argument.
///
/// # Examples
///
/// ```
/// use rdse_graph::{DenseDag, IncrementalLongestPath};
///
/// # fn main() -> Result<(), rdse_graph::GraphError> {
/// let mut g = DenseDag::from_edges(3, &[(0, 1, 0.0), (1, 2, 0.0)], &[1.0, 1.0, 1.0])?;
/// let mut lp = IncrementalLongestPath::new(3);
/// lp.full(&g)?;
/// assert_eq!(lp.makespan(), 3.0);
/// g.set_node_weight(1, 5.0);
/// lp.repair(&g, &[1])?; // relabels only {1, 2}
/// assert_eq!(lp.makespan(), 7.0);
/// lp.rollback();
/// assert_eq!(lp.makespan(), 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalLongestPath {
    comp: Vec<f64>,
    pred: Vec<u32>,
    cone: FixedBitSet,
    cone_list: Vec<u32>,
    indeg: Vec<u32>,
    frontier: Vec<u32>,
    journal: Vec<JournalEntry>,
    threshold: usize,
    /// Topological order recorded by the last full pass (`ord[i]` is
    /// the node at position `i`; `pos` is its inverse). Used by
    /// [`repair_ordered`](Self::repair_ordered) as a relaxation
    /// schedule and acyclicity certificate.
    ord: Vec<u32>,
    pos: Vec<u32>,
    /// Pre-delta backup of `ord`/`pos`, snapshotted once per journal
    /// window by the first full pass that overwrites them, so
    /// [`rollback`](Self::rollback) can restore the order along with
    /// the labels.
    ord_backup: Vec<u32>,
    pos_backup: Vec<u32>,
    ord_swapped: bool,
    /// Generation stamps for the ordered sweep: a node is *dirty* in
    /// the current sweep iff `dirty_gen[v] == gen`, and *processed*
    /// iff `proc_gen[v] == gen` (no per-sweep clearing).
    dirty_gen: Vec<u64>,
    proc_gen: Vec<u64>,
    gen: u64,
    stats: RepairStats,
}

impl IncrementalLongestPath {
    /// Creates label storage for `n` nodes with the default fall-back
    /// threshold of `n / 2` (a bounded repair does roughly twice the
    /// per-node work of a full pass, so beyond half the graph the full
    /// pass wins).
    pub fn new(n: usize) -> Self {
        IncrementalLongestPath {
            comp: vec![0.0; n],
            pred: vec![NO_PRED; n],
            cone: FixedBitSet::new(n),
            cone_list: Vec::new(),
            indeg: vec![0; n],
            frontier: Vec::new(),
            journal: Vec::new(),
            threshold: n / 2,
            ord: (0..n as u32).collect(),
            pos: (0..n as u32).collect(),
            ord_backup: vec![0; n],
            pos_backup: vec![0; n],
            ord_swapped: false,
            dirty_gen: vec![0; n],
            proc_gen: vec![0; n],
            gen: 0,
            stats: RepairStats::default(),
        }
    }

    /// Sets the cone size above which `repair` falls back to a full
    /// pass. `0` forces a full pass on every non-empty repair; a value
    /// `>= n` disables the fall-back.
    pub fn set_threshold(&mut self, threshold: usize) {
        self.threshold = threshold;
    }

    /// Current fall-back threshold.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Counters accumulated since construction.
    pub fn stats(&self) -> RepairStats {
        self.stats
    }

    /// All completion labels, indexed by node.
    pub fn labels(&self) -> &[f64] {
        &self.comp
    }

    /// Completion label of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[inline]
    pub fn label(&self, v: u32) -> f64 {
        self.comp[v as usize]
    }

    /// The longest-path value: the maximum completion label (0 for an
    /// empty graph).
    pub fn makespan(&self) -> f64 {
        let mut best = 0.0_f64;
        for &c in &self.comp {
            if c > best {
                best = c;
            }
        }
        best
    }

    /// One critical path, from a source to the lowest-indexed node
    /// achieving the makespan, in execution order. Empty if every label
    /// is zero or the graph has no nodes.
    pub fn critical_path(&self) -> Vec<u32> {
        let mut best = 0.0_f64;
        let mut terminal = None;
        for (i, &c) in self.comp.iter().enumerate() {
            if c > best {
                best = c;
                terminal = Some(i as u32);
            }
        }
        let mut path = Vec::new();
        let mut cur = terminal;
        while let Some(v) = cur {
            path.push(v);
            let p = self.pred[v as usize];
            cur = (p != NO_PRED).then_some(p);
        }
        path.reverse();
        path
    }

    /// Number of label changes journaled by the most recent
    /// `full`/`repair` call (distinct nodes, unless a node was relaxed
    /// to a new value more than once).
    pub fn journal_len(&self) -> usize {
        self.journal.len()
    }

    /// Combined capacity of the reusable scratch vectors, for arena
    /// warmness accounting.
    pub fn scratch_capacity(&self) -> usize {
        self.cone_list.capacity() + self.frontier.capacity() + self.journal.capacity()
    }

    /// Recomputes every label with a full Kahn pass over `g`.
    ///
    /// Old labels are journaled, so [`rollback`](Self::rollback) undoes
    /// this call. On a cycle the partially updated labels are left in
    /// place for the caller to roll back.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Cycle`] if `g` is not acyclic.
    pub fn full<G: RepairGraph>(&mut self, g: &G) -> Result<(), GraphError> {
        debug_assert_eq!(g.n_nodes(), self.comp.len(), "graph/label size mismatch");
        self.journal.clear();
        self.full_body(g)
    }

    /// Relabels the descendant cone of `seeds` after a delta, falling
    /// back to a full pass when the cone exceeds the threshold.
    ///
    /// `seeds` must contain every node whose weight or in-edge
    /// candidate set changed (duplicates are fine). Old labels are
    /// journaled, so [`rollback`](Self::rollback) undoes this call; on
    /// a cycle the partially updated labels are left in place for the
    /// caller to roll back. A cycle introduced by the delta is always
    /// detected: it must contain an added edge, whose head is seeded,
    /// so the whole cycle lies inside the cone and Kahn starves.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Cycle`] if the (new) graph has a cycle
    /// through the cone.
    pub fn repair<G: RepairGraph>(&mut self, g: &G, seeds: &[u32]) -> Result<(), GraphError> {
        debug_assert_eq!(g.n_nodes(), self.comp.len(), "graph/label size mismatch");
        self.journal.clear();
        self.cone.clear();
        self.cone_list.clear();
        for &s in seeds {
            if self.cone.insert(s as usize) {
                self.cone_list.push(s);
            }
        }
        let mut i = 0;
        while i < self.cone_list.len() {
            if self.cone_list.len() > self.threshold {
                self.stats.fallbacks += 1;
                return self.full_body(g);
            }
            let v = self.cone_list[i];
            i += 1;
            let (cone, cone_list) = (&mut self.cone, &mut self.cone_list);
            g.for_each_out(v, |t| {
                if cone.insert(t as usize) {
                    cone_list.push(t);
                }
            });
        }
        if self.cone_list.len() > self.threshold {
            self.stats.fallbacks += 1;
            return self.full_body(g);
        }
        let cone_len = self.cone_list.len();
        self.stats.repairs += 1;
        self.stats.max_cone = self.stats.max_cone.max(cone_len as u64);
        self.stats.cone_nodes += cone_len as u64;
        // In-cone in-degrees: count in-edge entries whose source lies in
        // the cone (out-of-cone predecessors keep final labels already).
        for idx in 0..cone_len {
            let v = self.cone_list[idx];
            let cone = &self.cone;
            let mut d = 0u32;
            g.for_each_in(v, |u, _| {
                if cone.contains(u as usize) {
                    d += 1;
                }
            });
            self.indeg[v as usize] = d;
        }
        self.frontier.clear();
        for idx in 0..cone_len {
            let v = self.cone_list[idx];
            if self.indeg[v as usize] == 0 {
                self.frontier.push(v);
            }
        }
        let mut processed = 0usize;
        while let Some(v) = self.frontier.pop() {
            processed += 1;
            self.relax(g, v);
            let (indeg, frontier, cone) = (&mut self.indeg, &mut self.frontier, &self.cone);
            g.for_each_out(v, |t| {
                if cone.contains(t as usize) {
                    let d = &mut indeg[t as usize];
                    *d -= 1;
                    if *d == 0 {
                        frontier.push(t);
                    }
                }
            });
        }
        if processed != cone_len {
            let on_cycle = self
                .cone_list
                .iter()
                .copied()
                .find(|&v| self.indeg[v as usize] > 0)
                .expect("starved cone implies a node with nonzero residual in-degree");
            return Err(GraphError::Cycle {
                on_cycle: NodeId(on_cycle),
            });
        }
        Ok(())
    }

    /// Change-driven repair: relaxes outward from `seeds`, enqueueing a
    /// successor only when its predecessor's completion label actually
    /// changed bits, and falling back to a full pass once the number of
    /// relaxations exceeds the threshold.
    ///
    /// This refines [`repair`](Self::repair): instead of relabeling the
    /// whole descendant cone of `seeds`, it touches only the nodes whose
    /// labels *move* — typically a small fraction of the cone when a
    /// delta shifts few path lengths. Labels and critical predecessors
    /// converge to the same unique fixpoint a full pass computes (each
    /// node's final relaxation sees its predecessors' final labels, and
    /// the candidate maximum is order-independent in value), so results
    /// are bit-identical to [`full`](Self::full).
    ///
    /// # Cycle detection caveat
    ///
    /// Unlike [`repair`](Self::repair), a cycle whose total weight is
    /// **zero** is *not* detected: the relaxation converges silently and
    /// the labels on the cycle keep whatever fixpoint they reach.
    /// Callers must guarantee one of:
    ///
    /// * the delta kept the graph acyclic (always true for weight-only
    ///   deltas on a [`DenseDag`], whose edge structure is fixed), or
    /// * every node weight on any possible cycle is positive — then a
    ///   cycle grows labels without bound, the relaxation cap trips, and
    ///   the full-pass fall-back starves and reports the cycle exactly
    ///   like [`repair`](Self::repair) would.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Cycle`] if the fall-back full pass detects
    /// a cycle (see the caveat above for when the fall-back is
    /// guaranteed to trigger).
    pub fn repair_dirty<G: RepairGraph>(&mut self, g: &G, seeds: &[u32]) -> Result<(), GraphError> {
        debug_assert_eq!(g.n_nodes(), self.comp.len(), "graph/label size mismatch");
        self.journal.clear();
        // `frontier` doubles as a FIFO queue (drained by index, never
        // shifted); `cone` marks currently-queued nodes so a node is
        // enqueued at most once per wave of predecessor changes.
        self.frontier.clear();
        for &s in seeds {
            if self.cone.insert(s as usize) {
                self.frontier.push(s);
            }
        }
        let mut head = 0usize;
        let mut pops = 0usize;
        while head < self.frontier.len() {
            if pops >= self.threshold {
                self.cone.clear();
                self.stats.fallbacks += 1;
                return self.full_body(g);
            }
            let v = self.frontier[head];
            head += 1;
            self.cone.remove(v as usize);
            pops += 1;
            let before = self.comp[v as usize].to_bits();
            self.relax(g, v);
            if self.comp[v as usize].to_bits() != before {
                let (cone, frontier) = (&mut self.cone, &mut self.frontier);
                g.for_each_out(v, |t| {
                    if cone.insert(t as usize) {
                        frontier.push(t);
                    }
                });
            }
        }
        // All queued bits were removed as they were popped; this only
        // resets the bitset's dirty-word tracking so it stays bounded.
        self.cone.clear();
        self.stats.repairs += 1;
        self.stats.max_cone = self.stats.max_cone.max(pops as u64);
        self.stats.cone_nodes += pops as u64;
        Ok(())
    }

    /// Order-certified repair: one forward sweep over the topological
    /// order recorded by the last full pass, relaxing only dirty nodes.
    ///
    /// This is the cheapest repair flavor: no cone discovery, no
    /// in-degree counting, no queue — just a linear scan from the first
    /// seeded position that skips clean nodes via generation stamps and
    /// stops as soon as no dirty node remains ahead. A node is dirty if
    /// it was seeded or an already-relaxed predecessor's label changed;
    /// each dirty node is relaxed exactly once.
    ///
    /// `seeds` must contain every node whose weight or in-edge candidate
    /// set changed — including the head of every edge the delta *added
    /// or removed* (duplicates are fine).
    ///
    /// # Order validity and cycles
    ///
    /// The sweep is correct when the recorded order is still topological
    /// for the current graph. Rather than requiring the caller to prove
    /// that, the sweep *detects* every harmful violation and falls back
    /// to a full pass (which rebuilds the order):
    ///
    /// * a relaxation that would read a dirty-but-not-yet-relaxed
    ///   predecessor (its label is stale, so the order must place it
    ///   later — a violated added edge);
    /// * a label change that would re-dirty a node the sweep already
    ///   relaxed (its position precedes the writer's — same violation
    ///   from the other side);
    /// * dirty nodes left over when the scan ends (marked behind the
    ///   scan point, unreachable in one forward pass).
    ///
    /// An added edge that *breaks* the recorded order but whose source
    /// label never goes stale is harmless and triggers no fall-back. A
    /// cycle introduced by the delta always trips one of the checks (no
    /// order can serialize a cycle), and the fall-back's Kahn pass then
    /// starves and reports it — no weight precondition, unlike
    /// [`repair_dirty`](Self::repair_dirty).
    ///
    /// Labels are bit-identical to a full recompute: every relaxed node
    /// saw final predecessor labels (else a check fired), and the
    /// candidate maximum is order-independent in value.
    ///
    /// The threshold bounds relaxations exactly as in
    /// [`repair`](Self::repair): exceeding it falls back to a full pass
    /// and counts a `fallbacks` tick.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Cycle`] if the fall-back full pass detects
    /// a cycle. Partially updated labels are left in place for the
    /// caller to roll back.
    pub fn repair_ordered<G: RepairGraph>(
        &mut self,
        g: &G,
        seeds: &[u32],
    ) -> Result<(), GraphError> {
        debug_assert_eq!(g.n_nodes(), self.comp.len(), "graph/label size mismatch");
        self.journal.clear();
        let n = self.comp.len();
        self.gen += 1;
        let gen = self.gen;
        let mut pending = 0usize;
        let mut start = n;
        for &s in seeds {
            let si = s as usize;
            if self.dirty_gen[si] != gen {
                self.dirty_gen[si] = gen;
                pending += 1;
                let p = self.pos[si] as usize;
                if p < start {
                    start = p;
                }
            }
        }
        let mut processed = 0usize;
        let mut i = start;
        while i < n && pending > 0 {
            let v = self.ord[i];
            i += 1;
            let vi = v as usize;
            if self.dirty_gen[vi] != gen {
                continue;
            }
            if processed >= self.threshold {
                self.stats.fallbacks += 1;
                return self.full_body(g);
            }
            processed += 1;
            pending -= 1;
            self.proc_gen[vi] = gen;
            // Pull-relax with staleness detection (can't reuse `relax`:
            // the dirty/processed stamps must be consulted per in-edge).
            let mut stale = false;
            let mut best = 0.0_f64;
            let mut best_pred = NO_PRED;
            {
                let (comp, dirty_gen, proc_gen) = (&self.comp, &self.dirty_gen, &self.proc_gen);
                g.for_each_in(v, |u, w| {
                    let ui = u as usize;
                    if dirty_gen[ui] == gen && proc_gen[ui] != gen {
                        stale = true;
                    }
                    let cand = comp[ui] + w;
                    if cand > best {
                        best = cand;
                        best_pred = u;
                    }
                });
            }
            if stale {
                self.stats.fallbacks += 1;
                return self.full_body(g);
            }
            let label = best + g.node_weight(v);
            let value_changed = label.to_bits() != self.comp[vi].to_bits();
            if value_changed || best_pred != self.pred[vi] {
                self.journal.push(JournalEntry {
                    node: v,
                    comp: self.comp[vi],
                    pred: self.pred[vi],
                });
                self.comp[vi] = label;
                self.pred[vi] = best_pred;
            }
            if value_changed {
                let (dirty_gen, proc_gen) = (&mut self.dirty_gen, &self.proc_gen);
                let mut redirtied = false;
                g.for_each_out(v, |t| {
                    let ti = t as usize;
                    if dirty_gen[ti] != gen {
                        dirty_gen[ti] = gen;
                        pending += 1;
                    } else if proc_gen[ti] == gen {
                        redirtied = true;
                    }
                });
                if redirtied {
                    self.stats.fallbacks += 1;
                    return self.full_body(g);
                }
            }
        }
        if pending > 0 {
            self.stats.fallbacks += 1;
            return self.full_body(g);
        }
        self.stats.repairs += 1;
        self.stats.max_cone = self.stats.max_cone.max(processed as u64);
        self.stats.cone_nodes += processed as u64;
        Ok(())
    }

    /// Position of `v` in the recorded topological order (see
    /// [`reposition`](Self::reposition) and
    /// [`sweep_certified`](Self::sweep_certified)).
    #[inline]
    pub fn order_pos(&self, v: u32) -> u32 {
        self.pos[v as usize]
    }

    /// Relaxes every node at order positions `start..n` in one plain
    /// forward pass — the cheapest repair of all, with **no** safety
    /// net: the caller must have certified that the recorded order is
    /// a valid topological order of the current graph (e.g. via
    /// [`reposition`](Self::reposition) outcomes plus
    /// [`order_pos`](Self::order_pos) checks over every changed edge).
    /// A valid order proves the graph acyclic, so this cannot fail;
    /// labels reach the unique fixpoint because each node is relaxed
    /// after all its predecessors. `start` must be at or before the
    /// first position whose node's weight or in-edge candidate set
    /// changed. Old labels are journaled exactly as in
    /// [`repair`](Self::repair).
    pub fn sweep_certified<G: RepairGraph>(&mut self, g: &G, start: usize) {
        debug_assert_eq!(g.n_nodes(), self.comp.len(), "graph/label size mismatch");
        self.journal.clear();
        let n = self.comp.len();
        let start = start.min(n);
        for i in start..n {
            let v = self.ord[i];
            self.relax(g, v);
        }
        let processed = n - start;
        self.stats.repairs += 1;
        self.stats.max_cone = self.stats.max_cone.max(processed as u64);
        self.stats.cone_nodes += processed as u64;
    }

    /// Full recompute used as the fall-back when a caller could *not*
    /// certify the recorded order for
    /// [`sweep_certified`](Self::sweep_certified): counts a `fallbacks`
    /// tick, then behaves exactly like [`full`](Self::full) (which also
    /// rebuilds the order).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Cycle`] if `g` is not acyclic.
    pub fn full_fallback<G: RepairGraph>(&mut self, g: &G) -> Result<(), GraphError> {
        self.stats.fallbacks += 1;
        self.full(g)
    }

    /// Locally re-certifies the recorded topological order after a
    /// delta that changed only `v`'s own edge set: moves `v` to a
    /// position strictly after all its in-neighbors and before all its
    /// out-neighbors, leaving every other node in place.
    ///
    /// This keeps the order valid — and the cheap
    /// [`repair_ordered`](Self::repair_ordered) sweep fall-back-free —
    /// across moves that re-chain a single node (e.g. re-splicing a
    /// task into a processor chain). Soundness requires that no *other*
    /// node's edge set changed, except for added edges `(a, b)` whose
    /// endpoints the caller knows were already ordered `a` before `b`
    /// (a bypass edge closing the gap `v` left satisfies this: both
    /// endpoints flanked `v`).
    ///
    /// Returns `None` — leaving the order untouched — when no such
    /// position exists (other nodes would have to move too); callers
    /// fall back to a full pass, or just proceed and let
    /// [`repair_ordered`](Self::repair_ordered)'s checks catch any
    /// harm. Returns `Some(false)` when `v`'s current position already
    /// satisfies its edges (nothing moved — the common fast path) and
    /// `Some(true)` when `v` was moved; after any move, previously
    /// checked nodes may have shifted relative to `v`, so callers
    /// certifying the whole order must re-verify every changed node's
    /// edges with [`order_pos`](Self::order_pos). The order change
    /// participates in the journal window: [`rollback`](Self::rollback)
    /// restores it.
    pub fn reposition<G: RepairGraph>(&mut self, g: &G, v: u32) -> Option<bool> {
        let n = self.comp.len();
        let pv = self.pos[v as usize] as i64;
        let mut lo: i64 = -1;
        let mut hi: i64 = n as i64;
        {
            let pos = &self.pos;
            g.for_each_in(v, |u, _| {
                let p = pos[u as usize] as i64;
                if p > lo {
                    lo = p;
                }
            });
            g.for_each_out(v, |t| {
                let p = pos[t as usize] as i64;
                if p < hi {
                    hi = p;
                }
            });
        }
        if lo < pv && pv < hi {
            return Some(false); // already between its neighbors
        }
        // Work in v-removed coordinates for the insertion slot.
        let lo_r = if lo > pv { lo - 1 } else { lo };
        let hi_r = if hi > pv { hi - 1 } else { hi };
        if lo_r >= hi_r {
            return None; // no single-node slot exists
        }
        if !self.ord_swapped {
            self.ord_backup.copy_from_slice(&self.ord);
            self.pos_backup.copy_from_slice(&self.pos);
            self.ord_swapped = true;
        }
        let s = (lo_r + 1) as usize; // insertion slot, v-removed coords
        let pv = pv as usize;
        if s <= pv {
            // v moves earlier: shift [s, pv) right by one.
            self.ord.copy_within(s..pv, s + 1);
            self.ord[s] = v;
            for i in s..=pv {
                self.pos[self.ord[i] as usize] = i as u32;
            }
        } else {
            // v moves later: shift (pv, s] left by one.
            self.ord.copy_within(pv + 1..s + 1, pv);
            self.ord[s] = v;
            for i in pv..=s {
                self.pos[self.ord[i] as usize] = i as u32;
            }
        }
        Some(true)
    }

    /// Undoes the label changes of the most recent `full`/`repair`
    /// call. Idempotent once drained; statistics are not rewound.
    ///
    /// If a full pass overwrote the recorded topological order within
    /// this journal window, the pre-delta order is restored too, so the
    /// order stays valid for the graph the caller is rolling back to.
    pub fn rollback(&mut self) {
        while let Some(e) = self.journal.pop() {
            self.comp[e.node as usize] = e.comp;
            self.pred[e.node as usize] = e.pred;
        }
        if self.ord_swapped {
            std::mem::swap(&mut self.ord, &mut self.ord_backup);
            std::mem::swap(&mut self.pos, &mut self.pos_backup);
            self.ord_swapped = false;
        }
    }

    /// Drops the undo journal of the most recent `full`/`repair` call
    /// without applying it, committing those label changes. After this,
    /// [`rollback`](Self::rollback) is a no-op until the next
    /// `full`/`repair`. Callers that interleave label updates with other
    /// revertible state use this to mark a delta boundary: a later abort
    /// that never re-ran `repair` must not roll labels back across it.
    pub fn discard_journal(&mut self) {
        self.journal.clear();
        self.ord_swapped = false;
    }

    /// Kahn over all nodes; shared by `full` and the repair fall-back
    /// (which must keep the already-cleared journal).
    ///
    /// Also records the pop order into `ord`/`pos` (any Kahn pop order
    /// is a topological order), backing up the previous order once per
    /// journal window so `rollback` can restore it.
    fn full_body<G: RepairGraph>(&mut self, g: &G) -> Result<(), GraphError> {
        self.stats.full_passes += 1;
        let n = self.comp.len();
        if !self.ord_swapped {
            self.ord_backup.copy_from_slice(&self.ord);
            self.pos_backup.copy_from_slice(&self.pos);
            self.ord_swapped = true;
        }
        self.frontier.clear();
        for v in 0..n {
            let d = g.in_degree(v as u32);
            self.indeg[v] = d;
            if d == 0 {
                self.frontier.push(v as u32);
            }
        }
        let mut processed = 0usize;
        while let Some(v) = self.frontier.pop() {
            self.ord[processed] = v;
            self.pos[v as usize] = processed as u32;
            processed += 1;
            self.relax(g, v);
            let (indeg, frontier) = (&mut self.indeg, &mut self.frontier);
            g.for_each_out(v, |t| {
                let d = &mut indeg[t as usize];
                *d -= 1;
                if *d == 0 {
                    frontier.push(t);
                }
            });
        }
        if processed != n {
            let on_cycle = (0..n)
                .find(|&v| self.indeg[v] > 0)
                .expect("cycle implies a node with nonzero residual in-degree");
            return Err(GraphError::Cycle {
                on_cycle: NodeId(on_cycle as u32),
            });
        }
        Ok(())
    }

    /// Recomputes the label of `v` from its in-edges, journaling the old
    /// value if anything changed.
    #[inline]
    fn relax<G: RepairGraph>(&mut self, g: &G, v: u32) {
        let comp = &self.comp;
        let mut best = 0.0_f64;
        let mut best_pred = NO_PRED;
        g.for_each_in(v, |u, w| {
            let cand = comp[u as usize] + w;
            if cand > best {
                best = cand;
                best_pred = u;
            }
        });
        let label = best + g.node_weight(v);
        let vi = v as usize;
        if label.to_bits() != self.comp[vi].to_bits() || best_pred != self.pred[vi] {
            self.journal.push(JournalEntry {
                node: v,
                comp: self.comp[vi],
                pred: self.pred[vi],
            });
            self.comp[vi] = label;
            self.pred[vi] = best_pred;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::longest_path::dag_longest_path;

    fn chain3() -> DenseDag {
        DenseDag::from_edges(3, &[(0, 1, 2.0), (1, 2, 3.0)], &[1.0, 1.0, 1.0]).unwrap()
    }

    #[test]
    fn from_edges_validates() {
        assert!(matches!(
            DenseDag::from_edges(2, &[(0, 5, 1.0)], &[0.0, 0.0]),
            Err(GraphError::NodeOutOfBounds { .. })
        ));
        assert!(matches!(
            DenseDag::from_edges(2, &[(1, 1, 1.0)], &[0.0, 0.0]),
            Err(GraphError::SelfLoop(_))
        ));
    }

    #[test]
    fn adjacency_preserves_insertion_order() {
        let g = DenseDag::from_edges(
            4,
            &[(0, 2, 1.0), (0, 1, 2.0), (3, 2, 3.0), (0, 2, 4.0)],
            &[0.0; 4],
        )
        .unwrap();
        let out0: Vec<(u32, u32)> = g.out_edges(0).collect();
        assert_eq!(out0, vec![(2, 0), (1, 1), (2, 3)]);
        let in2: Vec<(u32, u32)> = g.in_edges(2).collect();
        assert_eq!(in2, vec![(0, 0), (3, 2), (0, 3)]);
        assert_eq!(g.edge_endpoints(2), (3, 2));
        assert_eq!(g.n_edges(), 4);
    }

    #[test]
    fn longest_path_matches_digraph_reference() {
        // Same graph as the brute-force test in longest_path.rs, plus a
        // parallel edge to exercise the tie-break mirroring.
        let edges = [
            (0, 1, 2.0),
            (0, 2, 1.0),
            (1, 3, 0.5),
            (2, 3, 4.0),
            (3, 4, 0.0),
            (2, 5, 1.0),
            (4, 5, 2.5),
            (2, 3, 4.0),
        ];
        let w = [1.0, 2.0, 3.0, 1.0, 2.0, 1.0];
        let dense = DenseDag::from_edges(6, &edges, &w).unwrap();
        let sparse = dense.to_digraph();
        let a = dense.longest_path().unwrap();
        let b = dag_longest_path(&sparse, &w).unwrap();
        assert_eq!(a.makespan().to_bits(), b.makespan().to_bits());
        for v in 0..6u32 {
            assert_eq!(
                a.completion(NodeId(v)).to_bits(),
                b.completion(NodeId(v)).to_bits()
            );
        }
        assert_eq!(a.critical_path(), b.critical_path());
    }

    #[test]
    fn cycle_rejected_with_same_witness() {
        let dense = DenseDag::from_edges(3, &[(1, 2, 0.0), (2, 1, 0.0)], &[0.0; 3]).unwrap();
        assert_eq!(
            dense.longest_path(),
            Err(GraphError::Cycle {
                on_cycle: NodeId(1)
            })
        );
        let mut lp = IncrementalLongestPath::new(3);
        assert_eq!(
            lp.full(&dense),
            Err(GraphError::Cycle {
                on_cycle: NodeId(1)
            })
        );
    }

    #[test]
    fn repair_updates_descendants_only() {
        let mut g = chain3();
        let mut lp = IncrementalLongestPath::new(3);
        lp.set_threshold(3);
        lp.full(&g).unwrap();
        assert_eq!(lp.makespan(), 8.0);
        assert_eq!(lp.labels(), &[1.0, 4.0, 8.0]);
        g.set_node_weight(1, 3.0);
        lp.repair(&g, &[1]).unwrap();
        assert_eq!(lp.labels(), &[1.0, 6.0, 10.0]);
        assert_eq!(lp.critical_path(), vec![0, 1, 2]);
        let stats = lp.stats();
        assert_eq!(stats.repairs, 1);
        assert_eq!(stats.full_passes, 1);
        assert_eq!(stats.max_cone, 2);
        assert_eq!(stats.mean_cone(), 2.0);
    }

    #[test]
    fn rollback_restores_previous_labels() {
        let mut g = chain3();
        let mut lp = IncrementalLongestPath::new(3);
        lp.set_threshold(3);
        lp.full(&g).unwrap();
        let before: Vec<u64> = lp.labels().iter().map(|c| c.to_bits()).collect();
        g.set_node_weight(0, 9.0);
        g.set_edge_weight(1, 7.0);
        lp.repair(&g, &[0, 2]).unwrap();
        assert_eq!(lp.makespan(), 20.0);
        lp.rollback();
        let after: Vec<u64> = lp.labels().iter().map(|c| c.to_bits()).collect();
        assert_eq!(before, after);
        assert_eq!(lp.makespan(), 8.0);
    }

    #[test]
    fn zero_threshold_always_falls_back() {
        let mut g = chain3();
        let mut lp = IncrementalLongestPath::new(3);
        lp.set_threshold(0);
        lp.full(&g).unwrap();
        g.set_node_weight(2, 4.0);
        lp.repair(&g, &[2]).unwrap();
        assert_eq!(lp.makespan(), 11.0);
        let stats = lp.stats();
        assert_eq!(stats.repairs, 0);
        assert_eq!(stats.fallbacks, 1);
        assert_eq!(stats.full_passes, 2);
        // Rollback works through the fall-back path too.
        lp.rollback();
        assert_eq!(lp.makespan(), 8.0);
    }

    #[test]
    fn dirty_repair_matches_full_and_stops_at_unchanged_labels() {
        // Diamond where only one branch matters: bumping the slack
        // branch below the critical one must not touch the join's label.
        let mut g = DenseDag::from_edges(
            4,
            &[(0, 1, 0.0), (0, 2, 0.0), (1, 3, 0.0), (2, 3, 0.0)],
            &[1.0, 10.0, 2.0, 1.0],
        )
        .unwrap();
        let mut lp = IncrementalLongestPath::new(4);
        lp.set_threshold(4);
        lp.full(&g).unwrap();
        assert_eq!(lp.labels(), &[1.0, 11.0, 3.0, 12.0]);
        g.set_node_weight(2, 4.0);
        lp.repair_dirty(&g, &[2]).unwrap();
        assert_eq!(lp.labels(), &[1.0, 11.0, 5.0, 12.0]);
        // Node 2 changed (5 < 11 so node 3's max is unmoved): the
        // relaxation visits 2 and 3 but never re-enqueues past 3.
        assert_eq!(lp.stats().repairs, 1);
        assert_eq!(lp.stats().max_cone, 2);
        // A change that does move the join propagates and matches a
        // from-scratch pass bit for bit.
        g.set_node_weight(2, 20.0);
        lp.repair_dirty(&g, &[2]).unwrap();
        let mut fresh = IncrementalLongestPath::new(4);
        fresh.full(&g).unwrap();
        for v in 0..4 {
            assert_eq!(lp.labels()[v].to_bits(), fresh.labels()[v].to_bits());
        }
        assert_eq!(lp.critical_path(), fresh.critical_path());
    }

    #[test]
    fn dirty_repair_rollback_and_threshold_fallback() {
        let mut g = chain3();
        let mut lp = IncrementalLongestPath::new(3);
        lp.set_threshold(3);
        lp.full(&g).unwrap();
        let before: Vec<u64> = lp.labels().iter().map(|c| c.to_bits()).collect();
        g.set_node_weight(0, 9.0);
        lp.repair_dirty(&g, &[0]).unwrap();
        assert_eq!(lp.makespan(), 16.0);
        lp.rollback();
        let after: Vec<u64> = lp.labels().iter().map(|c| c.to_bits()).collect();
        assert_eq!(before, after);
        // Zero threshold: immediate fall-back to the full pass, which
        // still lands on the same labels.
        lp.set_threshold(0);
        lp.repair_dirty(&g, &[0]).unwrap();
        assert_eq!(lp.makespan(), 16.0);
        assert_eq!(lp.stats().fallbacks, 1);
        lp.rollback();
        assert_eq!(lp.makespan(), 8.0);
    }

    #[test]
    fn dirty_repair_detects_positive_weight_cycle_via_fallback() {
        // A cyclic graph with positive node weights: labels grow on
        // every lap, so the relaxation cap trips and the full-pass
        // fall-back reports the cycle.
        let g =
            DenseDag::from_edges(3, &[(0, 1, 0.0), (1, 2, 0.0), (2, 1, 0.0)], &[1.0; 3]).unwrap();
        let mut lp = IncrementalLongestPath::new(3);
        lp.set_threshold(16);
        assert!(matches!(
            lp.repair_dirty(&g, &[0]),
            Err(GraphError::Cycle { .. })
        ));
        assert!(lp.stats().fallbacks >= 1);
    }

    #[test]
    fn empty_seed_repair_is_a_cheap_no_op() {
        let g = chain3();
        let mut lp = IncrementalLongestPath::new(3);
        lp.full(&g).unwrap();
        lp.repair(&g, &[]).unwrap();
        assert_eq!(lp.makespan(), 8.0);
        assert_eq!(lp.stats().repairs, 1);
        assert_eq!(lp.stats().cone_nodes, 0);
    }
}
