//! Transitive closure with the O(1) cycle query of the paper (§4.3).
//!
//! The paper rejects a move "if a cycle appears when the search graph is
//! updated (detectable in O(1) operations on the associated transitive
//! closure matrix)". [`TransitiveClosure`] stores one reachability
//! [`BitRow`](crate::BitRow) per node; the cycle query for a candidate
//! edge `u → v` is a single bit test (`does v reach u?`).
//!
//! Closure maintenance under *insertions* is incremental
//! ([`TransitiveClosure::insert_edge`], O(n²/64) worst case). Deletions
//! cannot be handled incrementally with this representation, so callers
//! rebuild via [`TransitiveClosure::recompute`] after a batch of
//! removals; the pre-deletion closure remains a sound
//! *over-approximation* of reachability in the meantime (see
//! [`TransitiveClosure::may_reach`]).

use crate::{BitMatrix, Digraph, GraphError, NodeId};

/// Reachability matrix of a DAG.
///
/// Entry `(u, v)` is set iff there is a directed path from `u` to `v`
/// with at least one edge, or `u == v` (every node reaches itself).
///
/// # Examples
///
/// ```
/// use rdse_graph::{Digraph, NodeId, TransitiveClosure};
///
/// # fn main() -> Result<(), rdse_graph::GraphError> {
/// let mut g = Digraph::new(3);
/// g.add_edge(NodeId(0), NodeId(1), 0.0)?;
/// g.add_edge(NodeId(1), NodeId(2), 0.0)?;
/// let tc = TransitiveClosure::of(&g)?;
/// assert!(tc.reaches(NodeId(0), NodeId(2)));
/// // Adding 2 → 0 would close a cycle:
/// assert!(tc.would_create_cycle(NodeId(2), NodeId(0)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitiveClosure {
    reach: BitMatrix,
}

impl TransitiveClosure {
    /// Builds the closure of a DAG by dynamic programming over a reverse
    /// topological order (O(n·m/64)).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Cycle`] if `g` is not acyclic.
    pub fn of(g: &Digraph) -> Result<Self, GraphError> {
        let mut tc = TransitiveClosure {
            reach: BitMatrix::new(g.n_nodes()),
        };
        tc.recompute(g)?;
        Ok(tc)
    }

    /// Number of nodes covered by this closure.
    pub fn n(&self) -> usize {
        self.reach.n()
    }

    /// Rebuilds the closure from scratch.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Cycle`] if `g` is not acyclic.
    pub fn recompute(&mut self, g: &Digraph) -> Result<(), GraphError> {
        assert_eq!(
            g.n_nodes(),
            self.reach.n(),
            "node count changed under closure"
        );
        let order = crate::topo::topo_sort(g)?;
        self.reach.clear();
        for v in g.nodes() {
            self.reach.set(v.index(), v.index(), true);
        }
        // Reverse topological order: successors are finished before we
        // aggregate them into v's row.
        for &v in order.iter().rev() {
            for (s, _) in g.successors(v) {
                self.reach.union_row_into(s.index(), v.index());
            }
        }
        Ok(())
    }

    /// O(1) query: is there a path `from ⇝ to` (or `from == to`)?
    pub fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        self.reach.get(from.index(), to.index())
    }

    /// O(1) cycle test of the paper: would inserting edge `u → v` close
    /// a directed cycle? True iff `v` already reaches `u`.
    pub fn would_create_cycle(&self, u: NodeId, v: NodeId) -> bool {
        self.reaches(v, u)
    }

    /// Sound over-approximate reachability for use *after deletions have
    /// been applied to the graph but before [`recompute`]* — deleting
    /// edges can only remove paths, so a clear bit still proves
    /// unreachability while a set bit is inconclusive.
    ///
    /// [`recompute`]: TransitiveClosure::recompute
    pub fn may_reach(&self, from: NodeId, to: NodeId) -> bool {
        self.reaches(from, to)
    }

    /// Incrementally accounts for a newly inserted edge `u → v`.
    ///
    /// Every node that reaches `u` now also reaches everything `v`
    /// reaches. Cost O(n²/64) worst case, typically far less.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the insertion closes a cycle; callers
    /// must check [`would_create_cycle`](Self::would_create_cycle) first.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) {
        debug_assert!(
            !self.would_create_cycle(u, v),
            "insert_edge({u}, {v}) would create a cycle"
        );
        let n = self.reach.n();
        // Collect ancestors of u (including u itself) first to avoid
        // aliasing row borrows.
        let ancestors: Vec<usize> = (0..n).filter(|&x| self.reach.get(x, u.index())).collect();
        for x in ancestors {
            self.reach.union_row_into(v.index(), x);
        }
    }

    /// Number of reachable pairs (including the n self-pairs); useful in
    /// tests and as a cheap fingerprint.
    pub fn n_pairs(&self) -> usize {
        (0..self.reach.n())
            .map(|i| self.reach.row(i).count_ones())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::reaches as dfs_reaches;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn diamond() -> Digraph {
        let mut g = Digraph::new(4);
        g.add_edge(n(0), n(1), 0.0).unwrap();
        g.add_edge(n(0), n(2), 0.0).unwrap();
        g.add_edge(n(1), n(3), 0.0).unwrap();
        g.add_edge(n(2), n(3), 0.0).unwrap();
        g
    }

    #[test]
    fn closure_matches_dfs_on_diamond() {
        let g = diamond();
        let tc = TransitiveClosure::of(&g).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(tc.reaches(u, v), dfs_reaches(&g, u, v), "pair {u}->{v}");
            }
        }
    }

    #[test]
    fn cycle_query() {
        let g = diamond();
        let tc = TransitiveClosure::of(&g).unwrap();
        assert!(tc.would_create_cycle(n(3), n(0)));
        assert!(tc.would_create_cycle(n(3), n(1)));
        assert!(!tc.would_create_cycle(n(1), n(2)));
        // Self edge is a cycle: v reaches itself.
        assert!(tc.would_create_cycle(n(1), n(1)));
    }

    #[test]
    fn incremental_insert_matches_recompute() {
        let mut g = Digraph::new(6);
        g.add_edge(n(0), n(1), 0.0).unwrap();
        g.add_edge(n(2), n(3), 0.0).unwrap();
        g.add_edge(n(4), n(5), 0.0).unwrap();
        let mut tc = TransitiveClosure::of(&g).unwrap();
        for (u, v) in [(n(1), n(2)), (n(3), n(4)), (n(0), n(5))] {
            assert!(!tc.would_create_cycle(u, v));
            g.add_edge(u, v, 0.0).unwrap();
            tc.insert_edge(u, v);
            let fresh = TransitiveClosure::of(&g).unwrap();
            assert_eq!(tc, fresh, "after inserting {u}->{v}");
        }
        assert!(tc.reaches(n(0), n(5)));
        assert!(tc.would_create_cycle(n(5), n(0)));
    }

    #[test]
    fn recompute_rejects_cycle() {
        let mut g = Digraph::new(2);
        g.add_edge(n(0), n(1), 0.0).unwrap();
        g.add_edge(n(1), n(0), 0.0).unwrap();
        assert!(TransitiveClosure::of(&g).is_err());
    }

    #[test]
    fn pairs_count() {
        let tc = TransitiveClosure::of(&diamond()).unwrap();
        // 4 self pairs + 0->1,0->2,0->3,1->3,2->3 = 9.
        assert_eq!(tc.n_pairs(), 9);
    }
}
