//! Directed-graph substrate for design-space exploration.
//!
//! This crate provides the graph machinery that the DATE'05 exploration
//! tool of Miramond & Delosme is built on:
//!
//! * [`Digraph`] — a dense directed graph with weighted edges that
//!   supports cheap edge insertion/removal (the search graph *G′* of the
//!   paper is edited on every annealing move);
//! * [`dense::DenseDag`] — the same graph in CSR form (flat `u32` edge
//!   slabs, structure-of-arrays attributes) for read-mostly hot paths,
//!   plus [`dense::IncrementalLongestPath`], which keeps longest-path
//!   labels up to date under *bounded repair*: after a delta touching
//!   node set `T`, only the descendant cone of `T` is relabeled, with a
//!   fall-back to a full Kahn pass when the cone exceeds a threshold.
//!   Labels stay bit-identical to a from-scratch recompute (see the
//!   [`dense`] module docs for the determinism argument);
//! * [`topo`] — topological ordering and cycle diagnostics;
//! * [`closure::TransitiveClosure`] — a bitset reachability matrix with
//!   the O(1) cycle query used in §4.3 of the paper;
//! * [`longest_path`] — DAG longest path (the solution cost of §4.4);
//! * [`apsp::MaxPlusClosure`] — an all-pairs longest-path matrix in the
//!   (max,+) path algebra with the Woodbury-type rank-1 edge-insertion
//!   update the paper attributes to Carré's *Graphs and Networks*;
//! * [`linext`] — linear-extension counting, used to regenerate the
//!   solution-space sizes quoted in §5.
//!
//! # Examples
//!
//! ```
//! use rdse_graph::{Digraph, NodeId, longest_path::dag_longest_path};
//!
//! # fn main() -> Result<(), rdse_graph::GraphError> {
//! let mut g = Digraph::new(3);
//! g.add_edge(NodeId(0), NodeId(1), 2.0)?;
//! g.add_edge(NodeId(1), NodeId(2), 3.0)?;
//! let node_weights = [1.0, 1.0, 1.0];
//! let lp = dag_longest_path(&g, &node_weights)?;
//! assert_eq!(lp.makespan(), 8.0); // 1 + 2 + 1 + 3 + 1
//! # Ok(())
//! # }
//! ```

pub mod apsp;
pub mod bitset;
pub mod closure;
pub mod dense;
pub mod digraph;
pub mod dot;
pub mod linext;
pub mod longest_path;
pub mod topo;

pub use apsp::MaxPlusClosure;
pub use bitset::{BitMatrix, BitRow, FixedBitSet};
pub use closure::TransitiveClosure;
pub use dense::{DenseDag, IncrementalLongestPath, RepairGraph, RepairStats};
pub use digraph::{Digraph, EdgeRef, NodeId};
pub use linext::{binomial, count_linear_extensions, parallel_chain_orders};
pub use longest_path::{dag_longest_path, LongestPath};
pub use topo::{is_acyclic, topo_sort};

use std::error::Error;
use std::fmt;

/// Errors produced by graph operations.
///
/// The `Display` form is lowercase without trailing punctuation per the
/// Rust API guidelines (C-GOOD-ERR).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node index was outside `0..n_nodes()`.
    NodeOutOfBounds {
        /// The offending node.
        node: NodeId,
        /// Number of nodes in the graph.
        n_nodes: usize,
    },
    /// An edge would connect a node to itself.
    SelfLoop(NodeId),
    /// The graph contains a cycle where a DAG was required.
    Cycle {
        /// A node known to lie on the cycle.
        on_cycle: NodeId,
    },
    /// The requested edge does not exist.
    NoSuchEdge(NodeId, NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, n_nodes } => {
                write!(
                    f,
                    "node {node} out of bounds for graph with {n_nodes} nodes"
                )
            }
            GraphError::SelfLoop(n) => write!(f, "self-loop on node {n} is not allowed"),
            GraphError::Cycle { on_cycle } => {
                write!(f, "graph contains a cycle through node {on_cycle}")
            }
            GraphError::NoSuchEdge(u, v) => write!(f, "no edge from {u} to {v}"),
        }
    }
}

impl Error for GraphError {}
