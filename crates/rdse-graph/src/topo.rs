//! Topological ordering and cycle diagnostics.

use crate::{Digraph, GraphError, NodeId};

/// Computes a topological order of `g` with Kahn's algorithm.
///
/// Ties are broken by node index so the order is deterministic.
///
/// # Errors
///
/// Returns [`GraphError::Cycle`] if the graph is not acyclic.
///
/// # Examples
///
/// ```
/// use rdse_graph::{Digraph, NodeId, topo_sort};
///
/// # fn main() -> Result<(), rdse_graph::GraphError> {
/// let mut g = Digraph::new(3);
/// g.add_edge(NodeId(2), NodeId(0), 0.0)?;
/// g.add_edge(NodeId(0), NodeId(1), 0.0)?;
/// assert_eq!(topo_sort(&g)?, vec![NodeId(2), NodeId(0), NodeId(1)]);
/// # Ok(())
/// # }
/// ```
pub fn topo_sort(g: &Digraph) -> Result<Vec<NodeId>, GraphError> {
    let n = g.n_nodes();
    let mut in_deg: Vec<usize> = (0..n).map(|i| g.in_degree(NodeId(i as u32))).collect();
    // Min-index-first queue for determinism: a simple binary heap over
    // Reverse(ids) would do, but a sorted frontier vector is fine at the
    // graph sizes involved (tens to hundreds of tasks).
    let mut frontier: Vec<NodeId> = g.sources().collect();
    frontier.sort_unstable_by_key(|n| std::cmp::Reverse(*n));
    let mut order = Vec::with_capacity(n);
    while let Some(v) = frontier.pop() {
        order.push(v);
        for (s, _) in g.successors(v) {
            in_deg[s.index()] -= 1;
            if in_deg[s.index()] == 0 {
                let pos =
                    frontier.binary_search_by_key(&std::cmp::Reverse(s), |n| std::cmp::Reverse(*n));
                let pos = pos.unwrap_or_else(|p| p);
                frontier.insert(pos, s);
            }
        }
    }
    if order.len() != n {
        let on_cycle = (0..n)
            .map(|i| NodeId(i as u32))
            .find(|v| in_deg[v.index()] > 0)
            .expect("cycle implies a node with nonzero residual in-degree");
        return Err(GraphError::Cycle { on_cycle });
    }
    Ok(order)
}

/// Returns `true` if `g` contains no directed cycle.
///
/// # Examples
///
/// ```
/// use rdse_graph::{Digraph, NodeId, is_acyclic};
///
/// # fn main() -> Result<(), rdse_graph::GraphError> {
/// let mut g = Digraph::new(2);
/// g.add_edge(NodeId(0), NodeId(1), 0.0)?;
/// assert!(is_acyclic(&g));
/// g.add_edge(NodeId(1), NodeId(0), 0.0)?;
/// assert!(!is_acyclic(&g));
/// # Ok(())
/// # }
/// ```
pub fn is_acyclic(g: &Digraph) -> bool {
    topo_sort(g).is_ok()
}

/// Depth-first reachability: is there a directed path `from → … → to`?
///
/// `from == to` counts as reachable (the empty path). Used as the exact
/// fallback when the maintained transitive closure is stale after edge
/// deletions (see the crate-level docs and DESIGN.md).
pub fn reaches(g: &Digraph, from: NodeId, to: NodeId) -> bool {
    if from == to {
        return true;
    }
    let mut seen = vec![false; g.n_nodes()];
    let mut stack = vec![from];
    seen[from.index()] = true;
    while let Some(v) = stack.pop() {
        for (s, _) in g.successors(v) {
            if s == to {
                return true;
            }
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn topo_sort_chain() {
        let mut g = Digraph::new(4);
        g.add_edge(n(3), n(2), 0.0).unwrap();
        g.add_edge(n(2), n(1), 0.0).unwrap();
        g.add_edge(n(1), n(0), 0.0).unwrap();
        assert_eq!(topo_sort(&g).unwrap(), vec![n(3), n(2), n(1), n(0)]);
    }

    #[test]
    fn topo_sort_deterministic_ties() {
        let mut g = Digraph::new(4);
        g.add_edge(n(1), n(3), 0.0).unwrap();
        g.add_edge(n(2), n(3), 0.0).unwrap();
        // 0, 1, 2 are all sources: expect index order.
        assert_eq!(topo_sort(&g).unwrap(), vec![n(0), n(1), n(2), n(3)]);
    }

    #[test]
    fn cycle_detected() {
        let mut g = Digraph::new(3);
        g.add_edge(n(0), n(1), 0.0).unwrap();
        g.add_edge(n(1), n(2), 0.0).unwrap();
        g.add_edge(n(2), n(0), 0.0).unwrap();
        assert!(matches!(topo_sort(&g), Err(GraphError::Cycle { .. })));
        assert!(!is_acyclic(&g));
    }

    #[test]
    fn empty_graph_is_acyclic() {
        let g = Digraph::new(0);
        assert!(is_acyclic(&g));
        assert!(topo_sort(&g).unwrap().is_empty());
    }

    #[test]
    fn reaches_basic() {
        let mut g = Digraph::new(4);
        g.add_edge(n(0), n(1), 0.0).unwrap();
        g.add_edge(n(1), n(2), 0.0).unwrap();
        assert!(reaches(&g, n(0), n(2)));
        assert!(reaches(&g, n(2), n(2)));
        assert!(!reaches(&g, n(2), n(0)));
        assert!(!reaches(&g, n(0), n(3)));
    }
}
