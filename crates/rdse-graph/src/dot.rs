//! Graphviz DOT export for debugging and documentation figures.

use crate::{Digraph, NodeId};
use std::fmt::Write as _;

/// Renders `g` in Graphviz DOT syntax.
///
/// `label` maps each node to its display label; edge labels show the
/// weight when it is nonzero.
///
/// # Examples
///
/// ```
/// use rdse_graph::{Digraph, NodeId, dot::to_dot};
///
/// # fn main() -> Result<(), rdse_graph::GraphError> {
/// let mut g = Digraph::new(2);
/// g.add_edge(NodeId(0), NodeId(1), 3.0)?;
/// let dot = to_dot(&g, "tasks", |n| format!("T{}", n.0));
/// assert!(dot.contains("digraph tasks"));
/// assert!(dot.contains("\"T0\" -> \"T1\""));
/// # Ok(())
/// # }
/// ```
pub fn to_dot<F>(g: &Digraph, name: &str, label: F) -> String
where
    F: Fn(NodeId) -> String,
{
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=TB;");
    for v in g.nodes() {
        let _ = writeln!(out, "  \"{}\";", label(v));
    }
    for e in g.edges() {
        if e.weight != 0.0 {
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\" [label=\"{}\"];",
                label(e.from),
                label(e.to),
                e.weight
            );
        } else {
            let _ = writeln!(out, "  \"{}\" -> \"{}\";", label(e.from), label(e.to));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_all_edges() {
        let mut g = Digraph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 0.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 2.5).unwrap();
        let dot = to_dot(&g, "g", |n| n.to_string());
        assert!(dot.contains("\"v0\" -> \"v1\";"));
        assert!(dot.contains("\"v1\" -> \"v2\" [label=\"2.5\"];"));
        assert!(dot.starts_with("digraph g {"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
