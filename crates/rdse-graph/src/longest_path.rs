//! DAG longest path — the solution-cost evaluation of §4.4.
//!
//! The cost of a candidate mapping is the longest path of the search
//! graph *G′*, where node weights are task execution times and edge
//! weights are communication or reconfiguration latencies. The longest
//! path doubles as an ASAP schedule: the completion label of each node
//! is the earliest time at which the task can finish.

use crate::{Digraph, GraphError, NodeId};

/// Result of a longest-path computation over a DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct LongestPath {
    completion: Vec<f64>,
    critical_pred: Vec<Option<NodeId>>,
    makespan: f64,
    terminal: Option<NodeId>,
}

impl LongestPath {
    /// Assembles a result from precomputed parts (used by the dense
    /// evaluator in [`crate::dense`], which produces identical labels
    /// through its own relaxation loop).
    pub(crate) fn from_parts(
        completion: Vec<f64>,
        critical_pred: Vec<Option<NodeId>>,
        makespan: f64,
        terminal: Option<NodeId>,
    ) -> Self {
        LongestPath {
            completion,
            critical_pred,
            makespan,
            terminal,
        }
    }

    /// Completion label of `node`: node weight plus the longest weighted
    /// path from any source up to and including `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn completion(&self, node: NodeId) -> f64 {
        self.completion[node.index()]
    }

    /// Start label of `node` given its weight (`completion - weight`).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn start(&self, node: NodeId, node_weight: f64) -> f64 {
        self.completion[node.index()] - node_weight
    }

    /// The overall longest-path value (the makespan in scheduling use).
    pub fn makespan(&self) -> f64 {
        self.makespan
    }

    /// All completion labels, indexed by node.
    pub fn completions(&self) -> &[f64] {
        &self.completion
    }

    /// One critical path, from a source to the node achieving the
    /// makespan, in execution order.
    pub fn critical_path(&self) -> Vec<NodeId> {
        let mut path = Vec::new();
        let mut cur = self.terminal;
        while let Some(v) = cur {
            path.push(v);
            cur = self.critical_pred[v.index()];
        }
        path.reverse();
        path
    }
}

/// Computes the longest path of a weighted DAG.
///
/// `node_weights[i]` is the weight of node `i`; edge weights come from
/// the graph. The completion label of a node `v` is
/// `w(v) + max(0, max over incoming edges (u,v): completion(u) + w(u,v))`.
///
/// # Errors
///
/// Returns [`GraphError::Cycle`] if `g` is not acyclic.
///
/// # Panics
///
/// Panics if `node_weights.len() != g.n_nodes()`.
///
/// # Examples
///
/// ```
/// use rdse_graph::{Digraph, NodeId, dag_longest_path};
///
/// # fn main() -> Result<(), rdse_graph::GraphError> {
/// let mut g = Digraph::new(4);
/// g.add_edge(NodeId(0), NodeId(1), 0.0)?;
/// g.add_edge(NodeId(0), NodeId(2), 0.0)?;
/// g.add_edge(NodeId(1), NodeId(3), 0.0)?;
/// g.add_edge(NodeId(2), NodeId(3), 0.0)?;
/// let lp = dag_longest_path(&g, &[1.0, 5.0, 2.0, 1.0])?;
/// assert_eq!(lp.makespan(), 7.0); // via the heavy branch 0-1-3
/// assert_eq!(lp.critical_path(), vec![NodeId(0), NodeId(1), NodeId(3)]);
/// # Ok(())
/// # }
/// ```
pub fn dag_longest_path(g: &Digraph, node_weights: &[f64]) -> Result<LongestPath, GraphError> {
    assert_eq!(
        node_weights.len(),
        g.n_nodes(),
        "node weight slice must match node count"
    );
    let order = crate::topo::topo_sort(g)?;
    let n = g.n_nodes();
    let mut completion = vec![0.0_f64; n];
    let mut critical_pred: Vec<Option<NodeId>> = vec![None; n];
    let mut makespan = 0.0_f64;
    let mut terminal = None;
    for &v in &order {
        let mut best = 0.0_f64;
        let mut best_pred = None;
        // Scan incoming edges; parallel edges contribute individually so
        // the max weight wins naturally.
        for p in g.predecessors(v) {
            for (s, w) in g.successors(p) {
                if s == v {
                    let cand = completion[p.index()] + w;
                    if cand > best {
                        best = cand;
                        best_pred = Some(p);
                    }
                }
            }
        }
        completion[v.index()] = best + node_weights[v.index()];
        critical_pred[v.index()] = best_pred;
        if completion[v.index()] > makespan {
            makespan = completion[v.index()];
            terminal = Some(v);
        }
    }
    Ok(LongestPath {
        completion,
        critical_pred,
        makespan,
        terminal,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn single_node() {
        let g = Digraph::new(1);
        let lp = dag_longest_path(&g, &[4.5]).unwrap();
        assert_eq!(lp.makespan(), 4.5);
        assert_eq!(lp.critical_path(), vec![n(0)]);
    }

    #[test]
    fn empty_graph() {
        let g = Digraph::new(0);
        let lp = dag_longest_path(&g, &[]).unwrap();
        assert_eq!(lp.makespan(), 0.0);
        assert!(lp.critical_path().is_empty());
    }

    #[test]
    fn edge_weights_add() {
        let mut g = Digraph::new(2);
        g.add_edge(n(0), n(1), 10.0).unwrap();
        let lp = dag_longest_path(&g, &[1.0, 2.0]).unwrap();
        assert_eq!(lp.makespan(), 13.0);
        assert_eq!(lp.completion(n(0)), 1.0);
        assert_eq!(lp.start(n(1), 2.0), 11.0);
    }

    #[test]
    fn parallel_edges_take_max() {
        let mut g = Digraph::new(2);
        g.add_edge(n(0), n(1), 1.0).unwrap();
        g.add_edge(n(0), n(1), 9.0).unwrap();
        let lp = dag_longest_path(&g, &[0.0, 0.0]).unwrap();
        assert_eq!(lp.makespan(), 9.0);
    }

    #[test]
    fn disconnected_components() {
        let mut g = Digraph::new(4);
        g.add_edge(n(0), n(1), 0.0).unwrap();
        let lp = dag_longest_path(&g, &[1.0, 1.0, 7.0, 1.0]).unwrap();
        assert_eq!(lp.makespan(), 7.0);
        assert_eq!(lp.critical_path(), vec![n(2)]);
    }

    #[test]
    fn cycle_rejected() {
        let mut g = Digraph::new(2);
        g.add_edge(n(0), n(1), 0.0).unwrap();
        g.add_edge(n(1), n(0), 0.0).unwrap();
        assert!(dag_longest_path(&g, &[1.0, 1.0]).is_err());
    }

    #[test]
    fn brute_force_cross_check() {
        // Small random-ish DAG, enumerate all paths by DFS and compare.
        let mut g = Digraph::new(6);
        let edges = [
            (0, 1, 2.0),
            (0, 2, 1.0),
            (1, 3, 0.5),
            (2, 3, 4.0),
            (3, 4, 0.0),
            (2, 5, 1.0),
            (4, 5, 2.5),
        ];
        for (u, v, w) in edges {
            g.add_edge(n(u), n(v), w).unwrap();
        }
        let w = [1.0, 2.0, 3.0, 1.0, 2.0, 1.0];
        fn dfs(g: &Digraph, w: &[f64], v: NodeId) -> f64 {
            let mut best = 0.0_f64;
            for (s, ew) in g.successors(v) {
                best = best.max(ew + dfs(g, w, s));
            }
            best + w[v.index()]
        }
        let brute = g.nodes().map(|v| dfs(&g, &w, v)).fold(0.0_f64, f64::max);
        let lp = dag_longest_path(&g, &w).unwrap();
        assert!((lp.makespan() - brute).abs() < 1e-12);
    }

    #[test]
    fn critical_path_is_consistent() {
        let mut g = Digraph::new(5);
        g.add_edge(n(0), n(1), 0.0).unwrap();
        g.add_edge(n(1), n(2), 0.0).unwrap();
        g.add_edge(n(0), n(3), 0.0).unwrap();
        g.add_edge(n(3), n(2), 0.0).unwrap();
        g.add_edge(n(2), n(4), 0.0).unwrap();
        let w = [1.0, 10.0, 1.0, 2.0, 1.0];
        let lp = dag_longest_path(&g, &w).unwrap();
        let path = lp.critical_path();
        assert_eq!(path, vec![n(0), n(1), n(2), n(4)]);
        let sum: f64 = path.iter().map(|v| w[v.index()]).sum();
        assert_eq!(sum, lp.makespan());
    }
}
