//! All-pairs longest paths in the (max,+) path algebra, with the
//! Woodbury-type incremental update of §4.4.
//!
//! The paper notes that, simulated annealing being a *local* search, the
//! longest path "may in some cases be obtained incrementally by means of
//! a Woodbury-type update formula" and cites Carré's *Graphs and
//! Networks*. In the (max,+) dioid the analogue of the Sherman–Morrison
//! / Woodbury rank-1 identity for the closure matrix *D* of a DAG under
//! insertion of an edge `u → v` with weight `w` is the outer-product
//! update
//!
//! ```text
//! D'[x][y] = max( D[x][y],  D[x][u] + w + D[v][y] )
//! ```
//!
//! which costs O(n²) instead of the O(n·m) full recomputation.
//!
//! Weights here live on **edges only**; callers that also have node
//! weights fold them into edge weights (see `rdse-mapping`).

use crate::{Digraph, GraphError, NodeId};

/// Distance value for unreachable pairs.
pub const UNREACHABLE: f64 = f64::NEG_INFINITY;

/// All-pairs longest-path matrix of a weighted DAG.
///
/// `dist(u, v)` is the largest total edge weight over directed paths
/// `u ⇝ v`, `0.0` for `u == v`, and [`UNREACHABLE`] when no path exists.
///
/// # Examples
///
/// ```
/// use rdse_graph::{Digraph, NodeId, MaxPlusClosure};
///
/// # fn main() -> Result<(), rdse_graph::GraphError> {
/// let mut g = Digraph::new(3);
/// g.add_edge(NodeId(0), NodeId(1), 2.0)?;
/// let mut d = MaxPlusClosure::of(&g)?;
/// assert_eq!(d.dist(NodeId(0), NodeId(1)), 2.0);
///
/// // Incremental Woodbury-type update on edge insertion:
/// g.add_edge(NodeId(1), NodeId(2), 3.0)?;
/// d.insert_edge(NodeId(1), NodeId(2), 3.0);
/// assert_eq!(d.dist(NodeId(0), NodeId(2)), 5.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MaxPlusClosure {
    n: usize,
    // Row-major n×n matrix.
    d: Vec<f64>,
}

impl MaxPlusClosure {
    /// Builds the closure of a weighted DAG (O(n·m)).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Cycle`] if `g` is not acyclic.
    pub fn of(g: &Digraph) -> Result<Self, GraphError> {
        let n = g.n_nodes();
        let mut c = MaxPlusClosure {
            n,
            d: vec![UNREACHABLE; n * n],
        };
        c.recompute(g)?;
        Ok(c)
    }

    /// Number of nodes covered.
    pub fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn at(&self, i: usize, j: usize) -> f64 {
        self.d[i * self.n + j]
    }

    #[inline]
    fn at_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        &mut self.d[i * self.n + j]
    }

    /// Longest-path distance `from ⇝ to` (see type docs).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of bounds.
    pub fn dist(&self, from: NodeId, to: NodeId) -> f64 {
        assert!(
            from.index() < self.n && to.index() < self.n,
            "node out of bounds"
        );
        self.at(from.index(), to.index())
    }

    /// Rebuilds the matrix from scratch (used after edge deletions,
    /// which the rank-1 update cannot express).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Cycle`] if `g` is not acyclic.
    pub fn recompute(&mut self, g: &Digraph) -> Result<(), GraphError> {
        assert_eq!(g.n_nodes(), self.n, "node count changed under closure");
        let order = crate::topo::topo_sort(g)?;
        self.d.fill(UNREACHABLE);
        for i in 0..self.n {
            *self.at_mut(i, i) = 0.0;
        }
        // Process targets in topological order; for each source row,
        // relax along incoming edges. Equivalently: for v in topo order,
        // for each incoming edge (p, v): D[:, v] = max(D[:, v], D[:, p] + w).
        for &v in &order {
            for p in g.predecessors(v) {
                for (s, w) in g.successors(p) {
                    if s != v {
                        continue;
                    }
                    for x in 0..self.n {
                        let via = self.at(x, p.index());
                        if via == UNREACHABLE {
                            continue;
                        }
                        let cand = via + w;
                        if cand > self.at(x, v.index()) {
                            *self.at_mut(x, v.index()) = cand;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Woodbury-type rank-1 update for the insertion of edge
    /// `u → v` with weight `w` (O(n²)).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the edge would close a cycle, i.e. if
    /// `v` already reaches `u`; callers check reachability first.
    #[allow(clippy::needless_range_loop)] // x/y index two matrices at once
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId, w: f64) {
        debug_assert!(
            self.dist(v, u) == UNREACHABLE && u != v,
            "insert_edge({u}, {v}) would create a cycle"
        );
        let (ui, vi) = (u.index(), v.index());
        // Gather the column D[:, u] and row D[v, :] before mutating.
        let col_u: Vec<f64> = (0..self.n).map(|x| self.at(x, ui)).collect();
        let row_v: Vec<f64> = (0..self.n).map(|y| self.at(vi, y)).collect();
        for x in 0..self.n {
            let dxu = col_u[x];
            if dxu == UNREACHABLE {
                continue;
            }
            let base = dxu + w;
            for y in 0..self.n {
                let dvy = row_v[y];
                if dvy == UNREACHABLE {
                    continue;
                }
                let cand = base + dvy;
                if cand > self.at(x, y) {
                    *self.at_mut(x, y) = cand;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn diamond_distances() {
        let mut g = Digraph::new(4);
        g.add_edge(n(0), n(1), 1.0).unwrap();
        g.add_edge(n(0), n(2), 5.0).unwrap();
        g.add_edge(n(1), n(3), 1.0).unwrap();
        g.add_edge(n(2), n(3), 1.0).unwrap();
        let d = MaxPlusClosure::of(&g).unwrap();
        assert_eq!(d.dist(n(0), n(3)), 6.0);
        assert_eq!(d.dist(n(0), n(0)), 0.0);
        assert_eq!(d.dist(n(3), n(0)), UNREACHABLE);
        assert_eq!(d.dist(n(1), n(2)), UNREACHABLE);
    }

    #[test]
    fn incremental_matches_recompute() {
        let mut g = Digraph::new(5);
        g.add_edge(n(0), n(1), 2.0).unwrap();
        g.add_edge(n(2), n(3), 1.0).unwrap();
        let mut d = MaxPlusClosure::of(&g).unwrap();
        let inserts = [(n(1), n(2), 4.0), (n(3), n(4), 0.5), (n(0), n(4), 1.0)];
        for (u, v, w) in inserts {
            g.add_edge(u, v, w).unwrap();
            d.insert_edge(u, v, w);
            let fresh = MaxPlusClosure::of(&g).unwrap();
            assert_eq!(d, fresh, "after inserting {u}->{v}");
        }
        // 0->1->2->3->4 = 2+4+1+0.5 = 7.5 beats the direct 0->4 edge.
        assert_eq!(d.dist(n(0), n(4)), 7.5);
    }

    #[test]
    fn parallel_edge_insert_takes_max() {
        let mut g = Digraph::new(2);
        g.add_edge(n(0), n(1), 1.0).unwrap();
        let mut d = MaxPlusClosure::of(&g).unwrap();
        d.insert_edge(n(0), n(1), 3.0);
        assert_eq!(d.dist(n(0), n(1)), 3.0);
        d.insert_edge(n(0), n(1), 2.0); // weaker parallel edge: no change
        assert_eq!(d.dist(n(0), n(1)), 3.0);
    }

    #[test]
    fn cycle_rejected_on_build() {
        let mut g = Digraph::new(2);
        g.add_edge(n(0), n(1), 1.0).unwrap();
        g.add_edge(n(1), n(0), 1.0).unwrap();
        assert!(MaxPlusClosure::of(&g).is_err());
    }

    #[test]
    fn longest_not_shortest() {
        // Two parallel routes; (max,+) must pick the heavier one.
        let mut g = Digraph::new(3);
        g.add_edge(n(0), n(1), 1.0).unwrap();
        g.add_edge(n(1), n(2), 1.0).unwrap();
        g.add_edge(n(0), n(2), 10.0).unwrap();
        let d = MaxPlusClosure::of(&g).unwrap();
        assert_eq!(d.dist(n(0), n(2)), 10.0);
    }
}
