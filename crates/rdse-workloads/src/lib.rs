//! Benchmark workloads for the DATE'05 reproduction.
//!
//! * [`motion`] — the 28-task motion-detection application of §5, with
//!   the precedence structure published in the paper (verified by its
//!   linear-extension counts) and calibrated synthetic EPICURE-style
//!   estimates (the original per-task numbers are proprietary; see
//!   DESIGN.md for the substitution rationale);
//! * [`figure1`] — a reconstruction of the ten-task example of Fig. 1;
//! * [`random_dag`] — parameterized random DAG generators (layered,
//!   series-parallel, fork-join, pipeline, wide-fanout, chain) for
//!   stress tests, ablations and the `rdse-corpus` scenario families;
//! * [`epicure`] — the synthetic area–time Pareto-point generator.
//!
//! # Examples
//!
//! ```
//! use rdse_workloads::motion;
//!
//! let app = motion::motion_detection_app();
//! assert_eq!(app.n_tasks(), 28);
//! // All-software execution on the ARM922 is 76.4 ms, as in the paper.
//! assert!((app.total_sw_time().as_millis() - 76.4).abs() < 1e-6);
//! ```

pub mod epicure;
pub mod figure1;
pub mod motion;
pub mod random_dag;

pub use epicure::pareto_impls;
pub use figure1::figure1_app;
pub use motion::{epicure_architecture, motion_detection_app, MOTION_DEADLINE};
pub use random_dag::{
    chain_dag, fork_join_dag, layered_dag, pipeline_dag, series_parallel_dag, wide_fanout_dag,
    LayeredDagConfig,
};
