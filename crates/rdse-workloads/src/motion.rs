//! The 28-task motion-detection benchmark of §5.
//!
//! The application performs object labeling on a video stream under a
//! 40 ms per-image real-time constraint. The paper publishes:
//!
//! * the precedence **structure** — "the 28 nodes form a 7-node chain
//!   followed by a 7-node chain in parallel with one of 3 14-node
//!   chains", where the 14-node branch is a 6-node chain followed by a
//!   2-node chain in parallel with one node (3 interleavings) followed
//!   by 5 nodes. The resulting linear-extension counts — 1 716 for the
//!   first 20 nodes and 3·C(21,7) = 348 840 overall — are verified in
//!   this module's tests;
//! * the all-software execution time on the ARM922: **76.4 ms**;
//! * the target: ARM922 + Xilinx Virtex-E with `tR` = 22.5 µs/CLB;
//! * 5–6 Pareto implementations per function (EPICURE estimates).
//!
//! Per-task times/areas/data volumes are not public; they are
//! synthesized deterministically here, calibrated so the published
//! aggregates hold exactly and the optimization behaviour matches the
//! paper's figures (see DESIGN.md "Substitutions").

use crate::epicure::pareto_impls;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdse_model::units::{Bytes, Clbs, Micros};
use rdse_model::{Architecture, TaskGraph, TaskId};

/// The real-time constraint: 40 ms per image.
pub const MOTION_DEADLINE: Micros = Micros::new(40_000.0);

/// Total all-software time on the ARM922 (µs): 76.4 ms.
const TOTAL_SW_US: f64 = 76_400.0;

/// Functionality labels for the image-processing stages.
const FUNCTIONS: [&str; 14] = [
    "frame-diff",
    "threshold",
    "erosion",
    "dilation",
    "median-filter",
    "edge-detect",
    "labeling",
    "histogram",
    "cog-extract",
    "fir-filter",
    "dct",
    "quantize",
    "motion-vectors",
    "post-process",
];

/// Builds the 28-task motion-detection application.
///
/// Deterministic: repeated calls return identical graphs.
///
/// # Examples
///
/// ```
/// use rdse_workloads::motion_detection_app;
///
/// let app = motion_detection_app();
/// assert_eq!(app.n_tasks(), 28);
/// assert_eq!(app.edges().len(), 28);
/// ```
pub fn motion_detection_app() -> TaskGraph {
    let mut rng = StdRng::seed_from_u64(0x2005_DA7E);
    let mut app = TaskGraph::new("motion-detection");

    // ------------------------------------------------------------------
    // Software-time distribution: 9 heavy pixel-level stages carry ~88%
    // of the 76.4 ms (the paper's initial random solution moves 9 tasks
    // to hardware for 995 CLBs, suggesting a comparable concentration),
    // the 19 remaining control/feature tasks share the rest.
    // ------------------------------------------------------------------
    let heavy: [usize; 9] = [1, 2, 3, 4, 5, 14, 15, 16, 17];
    let mut raw = [0.0_f64; 28];
    for (i, r) in raw.iter_mut().enumerate() {
        *r = if heavy.contains(&i) {
            rng.random_range(5.0..9.0)
        } else {
            rng.random_range(0.25..0.65)
        };
    }
    let sum: f64 = raw.iter().sum();
    let sw_times: Vec<f64> = raw.iter().map(|r| r * TOTAL_SW_US / sum).collect();

    // Hardware families: heavy tasks get generous speedups (pixel loops
    // unroll well); light tasks are control-dominated — about half of
    // them have no hardware implementation at all.
    let mut tasks = Vec::with_capacity(28);
    for i in 0..28 {
        let sw = Micros::new(sw_times[i]);
        let impls = if heavy.contains(&i) {
            let base_clbs = rng.random_range(45..95);
            let base_speedup = rng.random_range(12.0..18.0);
            let count = if rng.random::<bool>() { 5 } else { 6 };
            pareto_impls(sw, base_clbs, base_speedup, count)
        } else if rng.random::<f64>() < 0.5 {
            let base_clbs = rng.random_range(35..80);
            let base_speedup = rng.random_range(4.0..8.0);
            pareto_impls(sw, base_clbs, base_speedup, 5)
        } else {
            Vec::new()
        };
        let t = app
            .add_task(
                format!("t{i:02}-{}", FUNCTIONS[i % FUNCTIONS.len()]),
                FUNCTIONS[i % FUNCTIONS.len()],
                sw,
                impls,
            )
            .expect("calibrated task parameters are valid");
        tasks.push(t);
    }

    // ------------------------------------------------------------------
    // Published precedence structure.
    // ------------------------------------------------------------------
    let mut edge = |a: usize, b: usize| {
        // Heavy producer-consumer pairs move image-sized buffers
        // (~QCIF frame tiles), light pairs move feature vectors.
        let bytes = if heavy.contains(&a) || heavy.contains(&b) {
            25_344 // 176 × 144 pixels
        } else {
            2_048
        };
        app.add_data_edge(tasks[a], tasks[b], Bytes::new(bytes))
            .expect("structure edges are acyclic by construction");
    };
    // Leading 7-node chain: 0..6.
    for i in 0..6 {
        edge(i, i + 1);
    }
    // Branch B: 7-node chain 7..13.
    edge(6, 7);
    for i in 7..13 {
        edge(i, i + 1);
    }
    // Branch C (14 nodes): 6-chain 14..19, {2-chain 20-21 ∥ node 22},
    // then 5-chain 23..27.
    edge(6, 14);
    for i in 14..19 {
        edge(i, i + 1);
    }
    edge(19, 20);
    edge(20, 21);
    edge(19, 22);
    edge(21, 23);
    edge(22, 23);
    for i in 23..27 {
        edge(i, i + 1);
    }

    app.validate().expect("motion benchmark is acyclic");
    app
}

/// The EPICURE target platform: an ARM922 processor plus a Virtex-E
/// class FPGA of the given size, with `tR` = 22.5 µs per CLB and a
/// shared-memory bus.
///
/// # Examples
///
/// ```
/// use rdse_workloads::epicure_architecture;
///
/// let arch = epicure_architecture(2000);
/// assert_eq!(arch.drlcs()[0].n_clbs().value(), 2000);
/// assert_eq!(arch.drlcs()[0].reconfig_time_per_clb().value(), 22.5);
/// ```
pub fn epicure_architecture(n_clbs: u32) -> Architecture {
    Architecture::builder("epicure")
        .processor("arm922", 10.0)
        .drlc("virtex-e", Clbs::new(n_clbs), Micros::new(22.5), 25.0)
        // ~25 MB/s effective shared-memory bus: 25 bytes/µs. A QCIF
        // frame (25 344 B) transfers in ~1 ms, so a random partition
        // pays several ms of communication — the paper's initial
        // solutions are bad for exactly this reason.
        .bus_rate(25.0)
        .build()
        .expect("reference architecture is valid")
}

/// The task ids of the first 20 nodes in the paper's counting argument
/// (the leading 7-chain, branch B's 7-chain and branch C's 6-chain).
pub fn first_twenty() -> Vec<TaskId> {
    (0..20u32).map(TaskId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdse_graph::{count_linear_extensions, parallel_chain_orders, Digraph, NodeId};

    #[test]
    fn has_28_tasks_and_published_sw_total() {
        let app = motion_detection_app();
        assert_eq!(app.n_tasks(), 28);
        assert!((app.total_sw_time().value() - 76_400.0).abs() < 1e-6);
    }

    #[test]
    fn is_deterministic() {
        let a = motion_detection_app();
        let b = motion_detection_app();
        assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());
    }

    #[test]
    fn heavy_tasks_have_5_or_6_impls() {
        let app = motion_detection_app();
        let with_impls = app
            .tasks()
            .filter(|(_, t)| !t.hw_impls().is_empty())
            .count();
        assert!(with_impls >= 12, "only {with_impls} hardware-capable tasks");
        for (_, t) in app.tasks() {
            if !t.hw_impls().is_empty() {
                assert!(
                    t.hw_impls().len() == 5 || t.hw_impls().len() == 6,
                    "{} has {} impls",
                    t.name(),
                    t.hw_impls().len()
                );
            }
        }
    }

    /// Rebuilds the precedence digraph restricted to a subset of tasks.
    fn induced(app: &TaskGraph, keep: &[TaskId]) -> Digraph {
        let mut g = Digraph::new(keep.len());
        let pos = |t: TaskId| keep.iter().position(|&k| k == t);
        for e in app.edges() {
            if let (Some(a), Some(b)) = (pos(e.from), pos(e.to)) {
                g.add_edge(NodeId(a as u32), NodeId(b as u32), 0.0).unwrap();
            }
        }
        g
    }

    #[test]
    fn first_twenty_nodes_have_1716_total_orders() {
        let app = motion_detection_app();
        let g = induced(&app, &first_twenty());
        assert_eq!(count_linear_extensions(&g, None), Some(1716));
        // The closed form the paper uses: a 7-chain in parallel with a
        // 6-chain after a common 7-chain prefix.
        assert_eq!(parallel_chain_orders(&[7, 6]), 1716);
    }

    #[test]
    fn full_graph_has_348840_total_orders() {
        let app = motion_detection_app();
        let all: Vec<TaskId> = app.task_ids().collect();
        let g = induced(&app, &all);
        assert_eq!(count_linear_extensions(&g, None), Some(348_840));
        // 3 internal orders of branch C × C(21,7) interleavings.
        assert_eq!(3 * parallel_chain_orders(&[7, 14]), 348_840);
    }

    #[test]
    fn deadline_is_40ms() {
        assert_eq!(MOTION_DEADLINE.as_millis(), 40.0);
    }

    #[test]
    fn architecture_matches_paper_constants() {
        let arch = epicure_architecture(2000);
        assert_eq!(arch.processors()[0].name(), "arm922");
        let d = &arch.drlcs()[0];
        // Reconfiguring 995 CLBs (the paper's initial solution) takes
        // 22.4 ms — reconfiguration really is the dominant cost.
        assert!((d.reconfiguration_time(Clbs::new(995)).as_millis() - 22.3875).abs() < 1e-9);
    }
}
