//! Synthetic EPICURE-style implementation estimates.
//!
//! The EPICURE project provided, for every function of the benchmark,
//! a set of 5–6 *Pareto-dominant* synthesized implementations in the
//! area–time plane (§5). Those numbers are not public; this module
//! generates families with the same structure: areas increasing
//! geometrically from a base, execution times decreasing with a
//! diminishing-returns speedup, so every generated set is Pareto by
//! construction.

use rand::{Rng, RngCore};
use rdse_model::units::{Clbs, Micros};
use rdse_model::HwImpl;

/// Generates `count` Pareto-dominant implementation points for a task
/// whose software time is `sw_time`.
///
/// * `base_clbs` — area of the smallest implementation;
/// * `base_speedup` — speedup of the smallest implementation over
///   software.
///
/// Successive points grow the area by ×1.35 and the speedup by ×1.28,
/// mirroring the diminishing returns of wider hardware unrolling.
///
/// # Examples
///
/// ```
/// use rdse_workloads::pareto_impls;
/// use rdse_model::units::Micros;
///
/// let impls = pareto_impls(Micros::new(1000.0), 60, 10.0, 5);
/// assert_eq!(impls.len(), 5);
/// // Areas strictly increase, times strictly decrease.
/// for w in impls.windows(2) {
///     assert!(w[0].clbs() < w[1].clbs());
///     assert!(w[0].time() > w[1].time());
/// }
/// ```
pub fn pareto_impls(
    sw_time: Micros,
    base_clbs: u32,
    base_speedup: f64,
    count: usize,
) -> Vec<HwImpl> {
    (0..count)
        .map(|j| {
            let area = (base_clbs as f64 * 1.35_f64.powi(j as i32)).round() as u32;
            let speedup = base_speedup * 1.28_f64.powi(j as i32);
            HwImpl::new(
                Clbs::new(area.max(1)),
                Micros::new(sw_time.value() / speedup),
            )
        })
        .collect()
}

/// Draws a randomized implementation family: 5 or 6 points, base area
/// in `[min_clbs, max_clbs]`, base speedup in `[8, 16]`.
pub fn random_pareto_impls(
    sw_time: Micros,
    min_clbs: u32,
    max_clbs: u32,
    rng: &mut dyn RngCore,
) -> Vec<HwImpl> {
    let count = if rng.random::<bool>() { 5 } else { 6 };
    let base = rng.random_range(min_clbs..=max_clbs);
    let speedup = rng.random_range(8.0..16.0);
    pareto_impls(sw_time, base, speedup, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn family_is_pareto() {
        let impls = pareto_impls(Micros::new(5000.0), 40, 12.0, 6);
        assert_eq!(impls.len(), 6);
        for i in 0..impls.len() {
            for j in 0..impls.len() {
                if i != j {
                    assert!(
                        !impls[i].is_dominated_by(&impls[j]),
                        "point {i} dominated by {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn speedups_in_expected_range() {
        let sw = Micros::new(1000.0);
        let impls = pareto_impls(sw, 50, 10.0, 5);
        let first_speedup = sw.value() / impls[0].time().value();
        let last_speedup = sw.value() / impls.last().unwrap().time().value();
        assert!((first_speedup - 10.0).abs() < 1e-9);
        assert!(last_speedup > 25.0 && last_speedup < 30.0);
    }

    #[test]
    fn random_families_have_5_or_6_points() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let f = random_pareto_impls(Micros::new(800.0), 30, 120, &mut rng);
            assert!(f.len() == 5 || f.len() == 6);
            assert!(f[0].clbs().value() >= 30 && f[0].clbs().value() <= 120);
        }
    }
}
