//! Random DAG workload generators for stress tests, ablations and the
//! `rdse-corpus` scenario families: layered, series-parallel,
//! fork-join, pipeline (parallel lanes), wide-fanout (scatter-gather)
//! and chain shapes, each a pure function of its parameters and seed.

use crate::epicure::random_pareto_impls;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdse_model::units::{Bytes, Micros};
use rdse_model::{TaskGraph, TaskId};

/// Parameters of the layered generator.
#[derive(Debug, Clone, Copy)]
pub struct LayeredDagConfig {
    /// Number of layers.
    pub layers: usize,
    /// Tasks per layer.
    pub width: usize,
    /// Probability (percent) of an edge between consecutive-layer pairs.
    pub edge_percent: u8,
    /// Fraction (percent) of tasks that receive hardware
    /// implementations.
    pub hw_percent: u8,
}

impl Default for LayeredDagConfig {
    fn default() -> Self {
        LayeredDagConfig {
            layers: 5,
            width: 4,
            edge_percent: 40,
            hw_percent: 70,
        }
    }
}

/// Generates a layered DAG: tasks arranged in layers, edges only from
/// layer *k* to layer *k+1* (plus a guaranteed chain so the graph is
/// connected top to bottom).
///
/// # Examples
///
/// ```
/// use rdse_workloads::{layered_dag, LayeredDagConfig};
///
/// let app = layered_dag(&LayeredDagConfig::default(), 7);
/// assert_eq!(app.n_tasks(), 20);
/// assert!(app.validate().is_ok());
/// ```
pub fn layered_dag(cfg: &LayeredDagConfig, seed: u64) -> TaskGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut app = TaskGraph::new(format!("layered-{}x{}", cfg.layers, cfg.width));
    let mut ids: Vec<Vec<TaskId>> = Vec::new();
    for l in 0..cfg.layers {
        let mut layer = Vec::new();
        for w in 0..cfg.width {
            let sw = Micros::new(rng.random_range(100.0..2000.0));
            let impls = if rng.random_range(0..100) < cfg.hw_percent as u32 {
                random_pareto_impls(sw, 30, 150, &mut rng)
            } else {
                Vec::new()
            };
            layer.push(
                app.add_task(format!("l{l}w{w}"), "kernel", sw, impls)
                    .expect("generated tasks are valid"),
            );
        }
        ids.push(layer);
    }
    for l in 1..cfg.layers {
        for (wi, &to) in ids[l].iter().enumerate() {
            let mut connected = false;
            for &from in &ids[l - 1] {
                if rng.random_range(0..100) < cfg.edge_percent as u32 {
                    app.add_data_edge(from, to, Bytes::new(rng.random_range(64..8192)))
                        .expect("layered edges are forward");
                    connected = true;
                }
            }
            if !connected {
                // Guarantee at least one predecessor.
                let from = ids[l - 1][wi % ids[l - 1].len()];
                app.add_data_edge(from, to, Bytes::new(1024))
                    .expect("layered edges are forward");
            }
        }
    }
    app.validate().expect("layered generation is acyclic");
    app
}

/// Generates a series-parallel DAG by recursive composition: a chain of
/// `sections` fork-join blocks, each with a random branch count.
///
/// The graph has a single source (`src`), a single sink (the last
/// join), and for every section `s` a fork node feeding `1..=max_branches`
/// branch tasks `s{s}b{b}` that all merge into `join{s}`.
///
/// # Examples
///
/// ```
/// use rdse_workloads::series_parallel_dag;
///
/// let app = series_parallel_dag(3, 4, 7);
/// assert!(app.validate().is_ok());
/// let g = app.precedence_graph();
/// // Single source, single sink; every section adds one join plus
/// // at least one branch task.
/// assert_eq!(g.sources().count(), 1);
/// assert_eq!(g.sinks().count(), 1);
/// assert!(app.n_tasks() >= 1 + 2 * 3);
/// ```
pub fn series_parallel_dag(sections: usize, max_branches: usize, seed: u64) -> TaskGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut app = TaskGraph::new(format!("series-parallel-{sections}"));
    let task = |app: &mut TaskGraph, label: String, rng: &mut StdRng| {
        let sw = Micros::new(rng.random_range(200.0..3000.0));
        let impls = if rng.random::<f64>() < 0.7 {
            random_pareto_impls(sw, 30, 150, rng)
        } else {
            Vec::new()
        };
        app.add_task(label, "kernel", sw, impls)
            .expect("generated tasks are valid")
    };
    let mut prev = task(&mut app, "src".into(), &mut rng);
    for s in 0..sections {
        let fork = prev;
        let branches = rng.random_range(1..=max_branches.max(1));
        let join = task(&mut app, format!("join{s}"), &mut rng);
        for b in 0..branches {
            let mid = task(&mut app, format!("s{s}b{b}"), &mut rng);
            app.add_data_edge(fork, mid, Bytes::new(rng.random_range(64..4096)))
                .expect("fork edge");
            app.add_data_edge(mid, join, Bytes::new(rng.random_range(64..4096)))
                .expect("join edge");
        }
        prev = join;
    }
    app.validate()
        .expect("series-parallel generation is acyclic");
    app
}

/// Adds one randomly-sized task; `hw_percent` of tasks receive an
/// area–time Pareto implementation family.
fn random_task(app: &mut TaskGraph, label: String, hw_percent: u8, rng: &mut StdRng) -> TaskId {
    let sw = Micros::new(rng.random_range(200.0..3000.0));
    let impls = if rng.random_range(0..100) < hw_percent as u32 {
        random_pareto_impls(sw, 30, 150, rng)
    } else {
        Vec::new()
    };
    app.add_task(label, "kernel", sw, impls)
        .expect("generated tasks are valid")
}

/// Generates a pure chain of `length` tasks — the fully sequential
/// extreme (no parallelism to exploit, every byte crosses the same
/// edge order).
///
/// # Examples
///
/// ```
/// use rdse_workloads::chain_dag;
///
/// let app = chain_dag(6, 1);
/// assert_eq!(app.n_tasks(), 6);
/// assert_eq!(app.precedence_graph().sources().count(), 1);
/// assert_eq!(app.precedence_graph().sinks().count(), 1);
/// ```
pub fn chain_dag(length: usize, seed: u64) -> TaskGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut app = TaskGraph::new(format!("chain-{length}"));
    let mut prev: Option<TaskId> = None;
    for i in 0..length.max(1) {
        let t = random_task(&mut app, format!("c{i}"), 70, &mut rng);
        if let Some(p) = prev {
            app.add_data_edge(p, t, Bytes::new(rng.random_range(64..4096)))
                .expect("chain edges are forward");
        }
        prev = Some(t);
    }
    app.validate().expect("chain generation is acyclic");
    app
}

/// Generates a single fork-join block: a source forks into `width`
/// parallel branches, each branch a chain of `depth` tasks, all merging
/// into one join. Stresses context packing (many concurrent hardware
/// candidates) and join-side bus pressure.
///
/// # Examples
///
/// ```
/// use rdse_workloads::fork_join_dag;
///
/// let app = fork_join_dag(4, 2, 3);
/// assert_eq!(app.n_tasks(), 2 + 4 * 2); // src + sink + width*depth
/// assert_eq!(app.precedence_graph().sources().count(), 1);
/// assert_eq!(app.precedence_graph().sinks().count(), 1);
/// ```
pub fn fork_join_dag(width: usize, depth: usize, seed: u64) -> TaskGraph {
    let (width, depth) = (width.max(1), depth.max(1));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut app = TaskGraph::new(format!("fork-join-{width}x{depth}"));
    let src = random_task(&mut app, "src".into(), 70, &mut rng);
    let sink_inputs: Vec<TaskId> = (0..width)
        .map(|b| {
            let mut prev = src;
            for d in 0..depth {
                let t = random_task(&mut app, format!("b{b}d{d}"), 70, &mut rng);
                app.add_data_edge(prev, t, Bytes::new(rng.random_range(64..4096)))
                    .expect("branch edges are forward");
                prev = t;
            }
            prev
        })
        .collect();
    let sink = random_task(&mut app, "join".into(), 70, &mut rng);
    for last in sink_inputs {
        app.add_data_edge(last, sink, Bytes::new(rng.random_range(64..4096)))
            .expect("join edges are forward");
    }
    app.validate().expect("fork-join generation is acyclic");
    app
}

/// Generates `lanes` independent parallel chains of `stages` tasks each,
/// sharing a common source and sink — the shape of independent
/// streaming pipelines contending for one bus.
///
/// # Examples
///
/// ```
/// use rdse_workloads::pipeline_dag;
///
/// let app = pipeline_dag(3, 2, 5);
/// assert_eq!(app.n_tasks(), 2 + 3 * 2); // src + sink + stages*lanes
/// assert!(app.validate().is_ok());
/// ```
pub fn pipeline_dag(stages: usize, lanes: usize, seed: u64) -> TaskGraph {
    let (stages, lanes) = (stages.max(1), lanes.max(1));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut app = TaskGraph::new(format!("pipeline-{stages}x{lanes}"));
    let src = random_task(&mut app, "src".into(), 70, &mut rng);
    let mut lasts = Vec::with_capacity(lanes);
    for l in 0..lanes {
        let mut prev = src;
        for s in 0..stages {
            let t = random_task(&mut app, format!("l{l}s{s}"), 70, &mut rng);
            app.add_data_edge(prev, t, Bytes::new(rng.random_range(512..16384)))
                .expect("pipeline edges are forward");
            prev = t;
        }
        lasts.push(prev);
    }
    let sink = random_task(&mut app, "sink".into(), 70, &mut rng);
    for last in lasts {
        app.add_data_edge(last, sink, Bytes::new(rng.random_range(512..16384)))
            .expect("sink edges are forward");
    }
    app.validate().expect("pipeline generation is acyclic");
    app
}

/// Generates a scatter-gather DAG: one source fanning out to `fanout`
/// independent tasks gathered by one sink. The extreme-parallelism
/// shape — the critical path is short, so reconfiguration and bus cost
/// dominate the makespan.
///
/// # Examples
///
/// ```
/// use rdse_workloads::wide_fanout_dag;
///
/// let app = wide_fanout_dag(8, 2);
/// assert_eq!(app.n_tasks(), 10);
/// assert_eq!(app.precedence_graph().sources().count(), 1);
/// assert_eq!(app.precedence_graph().sinks().count(), 1);
/// ```
pub fn wide_fanout_dag(fanout: usize, seed: u64) -> TaskGraph {
    let fanout = fanout.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut app = TaskGraph::new(format!("wide-fanout-{fanout}"));
    let src = random_task(&mut app, "scatter".into(), 70, &mut rng);
    let mids: Vec<TaskId> = (0..fanout)
        .map(|i| {
            let t = random_task(&mut app, format!("w{i}"), 80, &mut rng);
            app.add_data_edge(src, t, Bytes::new(rng.random_range(64..8192)))
                .expect("scatter edges are forward");
            t
        })
        .collect();
    let sink = random_task(&mut app, "gather".into(), 70, &mut rng);
    for m in mids {
        app.add_data_edge(m, sink, Bytes::new(rng.random_range(64..8192)))
            .expect("gather edges are forward");
    }
    app.validate().expect("wide-fanout generation is acyclic");
    app
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layered_dag_has_expected_size_and_is_acyclic() {
        let cfg = LayeredDagConfig {
            layers: 6,
            width: 5,
            edge_percent: 30,
            hw_percent: 50,
        };
        let app = layered_dag(&cfg, 1);
        assert_eq!(app.n_tasks(), 30);
        app.validate().unwrap();
        // Every non-first-layer task has at least one predecessor.
        let g = app.precedence_graph();
        let n_sources = g.sources().count();
        assert_eq!(n_sources, cfg.width);
    }

    #[test]
    fn layered_dag_is_deterministic_per_seed() {
        let cfg = LayeredDagConfig::default();
        let a = layered_dag(&cfg, 9);
        let b = layered_dag(&cfg, 9);
        assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());
        let c = layered_dag(&cfg, 10);
        assert_ne!(a.to_json().unwrap(), c.to_json().unwrap());
    }

    #[test]
    fn series_parallel_is_single_source_single_sink() {
        let app = series_parallel_dag(4, 3, 5);
        app.validate().unwrap();
        let g = app.precedence_graph();
        assert_eq!(g.sources().count(), 1);
        assert_eq!(g.sinks().count(), 1);
    }

    #[test]
    fn generators_produce_hw_capable_tasks() {
        let app = layered_dag(&LayeredDagConfig::default(), 2);
        assert!(app.tasks().any(|(_, t)| t.is_hw_capable()));
        let sp = series_parallel_dag(3, 4, 2);
        assert!(sp.tasks().any(|(_, t)| t.is_hw_capable()));
    }

    #[test]
    fn series_parallel_shape_joins_collect_their_branches() {
        // Structural check of the fork-join chain: every `join{s}` has
        // exactly the section's `s{s}b*` tasks as predecessors, and
        // every branch task has exactly one predecessor (the fork) and
        // one successor (the join).
        let app = series_parallel_dag(5, 4, 11);
        let g = app.precedence_graph();
        let name_of = |t: rdse_model::TaskId| app.task(t).unwrap().name().to_owned();
        for s in 0..5 {
            let join = app
                .task_ids()
                .find(|&t| name_of(t) == format!("join{s}"))
                .expect("join task exists");
            let branches: Vec<TaskId> = app
                .task_ids()
                .filter(|&t| name_of(t).starts_with(&format!("s{s}b")))
                .collect();
            assert!(!branches.is_empty(), "section {s} has no branches");
            assert!(branches.len() <= 4, "section {s} exceeds max_branches");
            assert_eq!(g.in_degree(join.node()), branches.len());
            for b in branches {
                assert_eq!(g.in_degree(b.node()), 1, "branch has one fork pred");
                assert_eq!(g.successors(b.node()).count(), 1, "branch feeds its join");
            }
        }
        // Determinism: same triple, same graph.
        assert_eq!(
            app.to_json().unwrap(),
            series_parallel_dag(5, 4, 11).to_json().unwrap()
        );
    }

    #[test]
    fn chain_dag_is_a_path() {
        let app = chain_dag(9, 4);
        assert_eq!(app.n_tasks(), 9);
        let g = app.precedence_graph();
        assert_eq!(g.sources().count(), 1);
        assert_eq!(g.sinks().count(), 1);
        for t in app.task_ids() {
            assert!(g.in_degree(t.node()) <= 1);
            assert!(g.successors(t.node()).count() <= 1);
        }
    }

    #[test]
    fn fork_join_branches_are_disjoint_chains() {
        let app = fork_join_dag(5, 3, 8);
        assert_eq!(app.n_tasks(), 2 + 5 * 3);
        let g = app.precedence_graph();
        assert_eq!(g.sources().count(), 1);
        assert_eq!(g.sinks().count(), 1);
        // The join gathers exactly one edge per branch.
        let sink = app.task_ids().last().unwrap();
        assert_eq!(g.in_degree(sink.node()), 5);
    }

    #[test]
    fn pipeline_and_fanout_shapes() {
        let p = pipeline_dag(4, 3, 6);
        assert_eq!(p.n_tasks(), 2 + 4 * 3);
        assert_eq!(p.precedence_graph().sources().count(), 1);
        assert_eq!(p.precedence_graph().sinks().count(), 1);

        let w = wide_fanout_dag(12, 6);
        assert_eq!(w.n_tasks(), 14);
        let g = w.precedence_graph();
        let sink = w.task_ids().last().unwrap();
        assert_eq!(g.in_degree(sink.node()), 12);
    }

    #[test]
    fn new_generators_are_deterministic_per_seed() {
        for (a, b) in [
            (chain_dag(7, 3), chain_dag(7, 3)),
            (fork_join_dag(3, 2, 5), fork_join_dag(3, 2, 5)),
            (pipeline_dag(3, 2, 9), pipeline_dag(3, 2, 9)),
            (wide_fanout_dag(6, 1), wide_fanout_dag(6, 1)),
        ] {
            assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());
        }
        assert_ne!(
            chain_dag(7, 3).to_json().unwrap(),
            chain_dag(7, 4).to_json().unwrap()
        );
    }
}
