//! Random DAG workload generators for stress tests and ablations.

use crate::epicure::random_pareto_impls;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdse_model::units::{Bytes, Micros};
use rdse_model::{TaskGraph, TaskId};

/// Parameters of the layered generator.
#[derive(Debug, Clone, Copy)]
pub struct LayeredDagConfig {
    /// Number of layers.
    pub layers: usize,
    /// Tasks per layer.
    pub width: usize,
    /// Probability (percent) of an edge between consecutive-layer pairs.
    pub edge_percent: u8,
    /// Fraction (percent) of tasks that receive hardware
    /// implementations.
    pub hw_percent: u8,
}

impl Default for LayeredDagConfig {
    fn default() -> Self {
        LayeredDagConfig {
            layers: 5,
            width: 4,
            edge_percent: 40,
            hw_percent: 70,
        }
    }
}

/// Generates a layered DAG: tasks arranged in layers, edges only from
/// layer *k* to layer *k+1* (plus a guaranteed chain so the graph is
/// connected top to bottom).
///
/// # Examples
///
/// ```
/// use rdse_workloads::{layered_dag, LayeredDagConfig};
///
/// let app = layered_dag(&LayeredDagConfig::default(), 7);
/// assert_eq!(app.n_tasks(), 20);
/// assert!(app.validate().is_ok());
/// ```
pub fn layered_dag(cfg: &LayeredDagConfig, seed: u64) -> TaskGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut app = TaskGraph::new(format!("layered-{}x{}", cfg.layers, cfg.width));
    let mut ids: Vec<Vec<TaskId>> = Vec::new();
    for l in 0..cfg.layers {
        let mut layer = Vec::new();
        for w in 0..cfg.width {
            let sw = Micros::new(rng.random_range(100.0..2000.0));
            let impls = if rng.random_range(0..100) < cfg.hw_percent as u32 {
                random_pareto_impls(sw, 30, 150, &mut rng)
            } else {
                Vec::new()
            };
            layer.push(
                app.add_task(format!("l{l}w{w}"), "kernel", sw, impls)
                    .expect("generated tasks are valid"),
            );
        }
        ids.push(layer);
    }
    for l in 1..cfg.layers {
        for (wi, &to) in ids[l].iter().enumerate() {
            let mut connected = false;
            for &from in &ids[l - 1] {
                if rng.random_range(0..100) < cfg.edge_percent as u32 {
                    app.add_data_edge(from, to, Bytes::new(rng.random_range(64..8192)))
                        .expect("layered edges are forward");
                    connected = true;
                }
            }
            if !connected {
                // Guarantee at least one predecessor.
                let from = ids[l - 1][wi % ids[l - 1].len()];
                app.add_data_edge(from, to, Bytes::new(1024))
                    .expect("layered edges are forward");
            }
        }
    }
    app.validate().expect("layered generation is acyclic");
    app
}

/// Generates a series-parallel DAG by recursive composition: a chain of
/// `sections` fork-join blocks, each with a random branch count.
pub fn series_parallel_dag(sections: usize, max_branches: usize, seed: u64) -> TaskGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut app = TaskGraph::new(format!("series-parallel-{sections}"));
    let task = |app: &mut TaskGraph, label: String, rng: &mut StdRng| {
        let sw = Micros::new(rng.random_range(200.0..3000.0));
        let impls = if rng.random::<f64>() < 0.7 {
            random_pareto_impls(sw, 30, 150, rng)
        } else {
            Vec::new()
        };
        app.add_task(label, "kernel", sw, impls)
            .expect("generated tasks are valid")
    };
    let mut prev = task(&mut app, "src".into(), &mut rng);
    for s in 0..sections {
        let fork = prev;
        let branches = rng.random_range(1..=max_branches.max(1));
        let join = task(&mut app, format!("join{s}"), &mut rng);
        for b in 0..branches {
            let mid = task(&mut app, format!("s{s}b{b}"), &mut rng);
            app.add_data_edge(fork, mid, Bytes::new(rng.random_range(64..4096)))
                .expect("fork edge");
            app.add_data_edge(mid, join, Bytes::new(rng.random_range(64..4096)))
                .expect("join edge");
        }
        prev = join;
    }
    app.validate()
        .expect("series-parallel generation is acyclic");
    app
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layered_dag_has_expected_size_and_is_acyclic() {
        let cfg = LayeredDagConfig {
            layers: 6,
            width: 5,
            edge_percent: 30,
            hw_percent: 50,
        };
        let app = layered_dag(&cfg, 1);
        assert_eq!(app.n_tasks(), 30);
        app.validate().unwrap();
        // Every non-first-layer task has at least one predecessor.
        let g = app.precedence_graph();
        let n_sources = g.sources().count();
        assert_eq!(n_sources, cfg.width);
    }

    #[test]
    fn layered_dag_is_deterministic_per_seed() {
        let cfg = LayeredDagConfig::default();
        let a = layered_dag(&cfg, 9);
        let b = layered_dag(&cfg, 9);
        assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());
        let c = layered_dag(&cfg, 10);
        assert_ne!(a.to_json().unwrap(), c.to_json().unwrap());
    }

    #[test]
    fn series_parallel_is_single_source_single_sink() {
        let app = series_parallel_dag(4, 3, 5);
        app.validate().unwrap();
        let g = app.precedence_graph();
        assert_eq!(g.sources().count(), 1);
        assert_eq!(g.sinks().count(), 1);
    }

    #[test]
    fn generators_produce_hw_capable_tasks() {
        let app = layered_dag(&LayeredDagConfig::default(), 2);
        assert!(app.tasks().any(|(_, t)| t.is_hw_capable()));
        let sp = series_parallel_dag(3, 4, 2);
        assert!(sp.tasks().any(|(_, t)| t.is_hw_capable()));
    }
}
