//! A reconstruction of the ten-task example of Fig. 1.
//!
//! The paper's Fig. 1(a) shows a task graph with nodes A…J and data
//! quantities 1–6; (b) shows a spatio-temporal partitioning with A, B,
//! C on the processor (total order A → C → B) and the remaining tasks
//! split over two execution contexts; (c) shows the resulting schedule
//! with the reconfiguration between contexts. The published figure is
//! schematic, so this module reconstructs a graph *consistent* with the
//! described moves (the paper discusses moving C next to D, B before A,
//! and G next to J) rather than a bit-exact copy.

use rdse_model::units::{Bytes, Clbs, Micros};
use rdse_model::{HwImpl, TaskGraph, TaskId};

/// Task names of the example, in id order.
pub const NAMES: [&str; 10] = ["A", "B", "C", "D", "E", "F", "G", "H", "I", "J"];

/// Builds the ten-task example application.
///
/// Every task has a software estimate and a couple of hardware
/// implementations so any of the paper's example moves is expressible.
///
/// # Examples
///
/// ```
/// use rdse_workloads::figure1_app;
///
/// let app = figure1_app();
/// assert_eq!(app.n_tasks(), 10);
/// assert!(app.validate().is_ok());
/// ```
pub fn figure1_app() -> TaskGraph {
    let mut app = TaskGraph::new("figure1");
    let sw = [3.0, 4.0, 5.0, 4.0, 3.0, 5.0, 4.0, 6.0, 5.0, 4.0];
    let mut ids = Vec::new();
    for (i, name) in NAMES.iter().enumerate() {
        let sw_time = Micros::new(sw[i] * 1000.0);
        let impls = vec![
            HwImpl::new(Clbs::new(80), sw_time / 8.0),
            HwImpl::new(Clbs::new(160), sw_time / 14.0),
        ];
        ids.push(
            app.add_task(*name, "kernel", sw_time, impls)
                .expect("example tasks are valid"),
        );
    }
    // Edges with the figure's small data quantities (in kilobytes here
    // so bus transfers are visible on the schedule).
    let edges: [(usize, usize, u64); 12] = [
        (0, 2, 4), // A -> C
        (0, 3, 3), // A -> D
        (1, 3, 1), // B -> D
        (1, 4, 3), // B -> E
        (2, 5, 4), // C -> F
        (3, 5, 5), // D -> F
        (3, 6, 6), // D -> G
        (4, 6, 5), // E -> G
        (5, 7, 6), // F -> H
        (6, 7, 5), // G -> H
        (7, 8, 4), // H -> I
        (7, 9, 3), // H -> J
    ];
    for (a, b, kb) in edges {
        app.add_data_edge(ids[a], ids[b], Bytes::new(kb * 1024))
            .expect("example edges are acyclic");
    }
    app.validate().expect("figure-1 example is acyclic");
    app
}

/// The task id of a named node (`"A"`…`"J"`).
///
/// # Panics
///
/// Panics if `name` is not one of the example's node names.
pub fn task_by_name(name: &str) -> TaskId {
    let idx = NAMES
        .iter()
        .position(|n| *n == name)
        .unwrap_or_else(|| panic!("unknown figure-1 task {name}"));
    TaskId(idx as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_is_as_published() {
        let app = figure1_app();
        assert_eq!(app.n_tasks(), 10);
        assert_eq!(app.edges().len(), 12);
        // A and B are the sources; I and J the sinks.
        let g = app.precedence_graph();
        let sources: Vec<_> = g.sources().collect();
        let sinks: Vec<_> = g.sinks().collect();
        assert_eq!(sources.len(), 2);
        assert_eq!(sinks.len(), 2);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(task_by_name("A"), TaskId(0));
        assert_eq!(task_by_name("J"), TaskId(9));
    }

    #[test]
    #[should_panic(expected = "unknown figure-1 task")]
    fn unknown_name_panics() {
        let _ = task_by_name("Z");
    }
}
