//! Throughput of [`Evaluator::evaluate_batch`] against one-at-a-time
//! evaluation of the same candidate set.
//!
//! The batch API amortizes one full synchronization of the base
//! mapping across every candidate: each candidate is applied as a
//! diff, scored through the bounded-repair path, and rolled back. The
//! single-evaluator baseline pays a full arena-backed pass per
//! candidate. Both sides are asserted bit-identical per candidate
//! before anything is timed.
//!
//! Candidates are 1–3-move perturbations of a common base — the shape
//! a portfolio or tournament step hands the evaluator. Two workloads
//! are measured: the paper's fig3 motion-detection graph (29 tasks)
//! and a 200-task layered DAG. A `profile_*` line reports the split
//! that decides each outcome: how many candidates the bounded repair
//! absorbed versus how many failed order certification and fell back
//! to a full pass.
//!
//! That split is the whole story of the mixed-move ceiling. Multi-move
//! candidates with pair moves reorder schedules and contexts, and
//! roughly 70% of them fail certification — each such candidate pays
//! the diff scan, the undo-log writes, the failed placement round
//! *and* the full fallback pass, then a rollback, where the single
//! evaluator pays one clean full pass. On the 29-task fig3 graph the
//! full pass is so cheap that this bookkeeping is the same order of
//! magnitude, so mixed batch stays at ~0.9x there — structurally, not
//! fixably: the batch path cannot beat a full pass it ends up running
//! anyway. On 200 tasks the 30% of candidates that *do* certify
//! repair a ~130-node cone instead of relabeling 200 nodes, which
//! (after the no-progress early exit in the certification loop) puts
//! mixed batch ahead; single-impl-move batches certify every time and
//! win ~2x. Results append to `RDSE_BENCH_JSON` (NDJSON) with
//! explicit `steps_per_sec` fields (candidates scored per second,
//! gated by `bench_compare`).
//!
//! Knobs: `RDSE_BENCH_STEPS` overrides the per-workload candidate count.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rdse_mapping::moves::{propose_impl_move, propose_pair_move, MoveScratch};
use rdse_mapping::{random_initial, Evaluator, Mapping};
use rdse_model::{Architecture, TaskGraph};
use rdse_workloads::{epicure_architecture, layered_dag, motion_detection_app, LayeredDagConfig};
use std::hint::black_box;
use std::io::Write as _;
use std::time::Instant;

fn append_record(record: &str) {
    let Ok(path) = std::env::var("RDSE_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| writeln!(file, "{record}"));
    if let Err(e) = written {
        eprintln!("warning: cannot append bench record: {e}");
    }
}

/// Candidate-set shapes: mixed multi-move perturbations (the general
/// case, fall-back heavy) or single re-implementation moves (the
/// tournament/packing case the repair path absorbs without fall-back).
#[derive(Clone, Copy)]
enum Moves {
    Mixed,
    ImplOnly,
}

/// Builds `count` candidates near `base`: 1–3 random moves each
/// (`Mixed`) or exactly one re-implementation move (`ImplOnly`).
fn make_candidates(
    app: &TaskGraph,
    arch: &Architecture,
    base: &Mapping,
    rng: &mut StdRng,
    count: usize,
    moves: Moves,
) -> Vec<Mapping> {
    let mut scratch = MoveScratch::default();
    (0..count)
        .map(|c| {
            let mut cand = base.clone();
            match moves {
                Moves::Mixed => {
                    for step in 0..=(c % 3) {
                        let _ = if (c + step) % 2 == 0 {
                            propose_pair_move(app, arch, &mut cand, rng, &mut scratch)
                        } else {
                            propose_impl_move(app, arch, &mut cand, rng, &mut scratch)
                        };
                    }
                }
                Moves::ImplOnly => {
                    let _ = propose_impl_move(app, arch, &mut cand, rng, &mut scratch);
                }
            }
            cand
        })
        .collect()
}

fn run_workload(
    label: &str,
    app: &TaskGraph,
    arch: &Architecture,
    seed: u64,
    total: u64,
    moves: Moves,
) {
    let batch_size = 256usize;
    let rounds = (total as usize / batch_size).max(4);

    let mut rng = StdRng::seed_from_u64(seed);
    let base = random_initial(app, arch, &mut rng);
    let candidates = make_candidates(app, arch, &base, &mut rng, batch_size, moves);

    // Parity: batch results equal one-at-a-time results, bit for bit
    // (summaries for feasible candidates, error classes otherwise).
    let mut batch_eval = Evaluator::new(app, arch);
    let mut single_eval = Evaluator::new(app, arch);
    let results = batch_eval
        .evaluate_batch(&base, &candidates)
        .expect("base is feasible")
        .to_vec();
    for (i, (cand, got)) in candidates.iter().zip(&results).enumerate() {
        let fresh = single_eval.evaluate(cand);
        match (got, fresh) {
            (Ok(b), Ok(f)) => assert_eq!(*b, f, "batch diverged on candidate {i}"),
            (Err(b), Err(f)) => assert_eq!(*b, f, "error class diverged on candidate {i}"),
            (b, f) => panic!("feasibility diverged on candidate {i}: {b:?} vs {f:?}"),
        }
    }

    // Warm-up one round each, then the timed rounds.
    black_box(batch_eval.evaluate_batch(&base, &candidates).unwrap());
    let stats_before = batch_eval.stats();
    let start = Instant::now();
    for _ in 0..rounds {
        black_box(batch_eval.evaluate_batch(&base, &candidates).unwrap());
    }
    let batch_time = start.elapsed();
    let stats = batch_eval.stats();
    // Where the batch path spends its time: candidates the bounded
    // repair absorbed vs. candidates that fell back to a full pass
    // after a failed certification (those pay for the attempt *and*
    // the pass — the mixed-move ceiling, see the module docs).
    let repairs = stats.repairs - stats_before.repairs;
    let fallbacks = stats.fallbacks - stats_before.fallbacks;
    let cone = stats.cone_nodes - stats_before.cone_nodes;
    println!(
        "bench batch_vs_single/profile_{label}: {repairs} repaired (mean cone {:.1}), \
         {fallbacks} fell back to a full pass ({:.0}% of candidates)",
        cone as f64 / (repairs as f64).max(1.0),
        100.0 * fallbacks as f64 / ((repairs + fallbacks) as f64).max(1.0)
    );

    for cand in &candidates {
        let _ = black_box(single_eval.evaluate(black_box(cand)));
    }
    let start = Instant::now();
    for _ in 0..rounds {
        for cand in &candidates {
            let _ = black_box(single_eval.evaluate(black_box(cand)));
        }
    }
    let single_time = start.elapsed();

    let scored = (rounds * batch_size) as f64;
    let batch_rate = scored / batch_time.as_secs_f64();
    let single_rate = scored / single_time.as_secs_f64();
    let speedup = batch_rate / single_rate;

    println!(
        "bench batch_vs_single/batch_{label}  {batch_rate:>12.0} cands/s \
         ({rounds} rounds x {batch_size} in {batch_time:?})"
    );
    println!(
        "bench batch_vs_single/single_{label} {single_rate:>12.0} cands/s \
         ({rounds} rounds x {batch_size} in {single_time:?})"
    );
    println!("bench batch_vs_single/speedup_{label} {speedup:>10.2}x");

    append_record(&format!(
        "{{\"name\":\"batch_vs_single/batch_{label}\",\"steps_per_sec\":{batch_rate:.0},\
         \"steps\":{},\"seconds\":{:.6}}}",
        scored as u64,
        batch_time.as_secs_f64()
    ));
    append_record(&format!(
        "{{\"name\":\"batch_vs_single/single_{label}\",\"steps_per_sec\":{single_rate:.0},\
         \"steps\":{},\"seconds\":{:.6}}}",
        scored as u64,
        single_time.as_secs_f64()
    ));
    append_record(&format!(
        "{{\"name\":\"batch_vs_single/speedup_{label}\",\"ratio\":{speedup:.3}}}"
    ));
}

fn main() {
    let total: u64 = std::env::var("RDSE_BENCH_STEPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50_000);

    let fig3_app = motion_detection_app();
    let fig3_arch = epicure_architecture(2000);
    run_workload("fig3", &fig3_app, &fig3_arch, 11, total, Moves::Mixed);

    let layered = layered_dag(
        &LayeredDagConfig {
            layers: 20,
            width: 10,
            edge_percent: 30,
            hw_percent: 60,
        },
        42,
    );
    let layered_arch = epicure_architecture(4000);
    run_workload(
        "layered200",
        &layered,
        &layered_arch,
        13,
        total,
        Moves::Mixed,
    );
    run_workload(
        "layered200_impl",
        &layered,
        &layered_arch,
        17,
        total,
        Moves::ImplOnly,
    );
}
