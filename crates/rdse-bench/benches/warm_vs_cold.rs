//! Convergence value of the archive warm start: iterations a
//! warm-started exploration needs to reach the makespan a cold run
//! ends at, against the cold run's own count.
//!
//! The protocol is fully deterministic, so the committed numbers are
//! machine-independent and exact:
//!
//! 1. A **donor** run (different seed, bigger budget) plays the role of
//!    an archived result — its best mapping is what
//!    [`Archive::warm_candidate`] would hand a later job.
//! 2. A **cold reference** run (the request's own seed) fixes the
//!    target: its final best makespan.
//! 3. The cold run is repeated with `target_cost` set to that makespan
//!    — the iteration where it first reaches its own final quality.
//! 4. The **warm** run uses the same options plus `warm_start` from the
//!    donor (chain 0 seeded, RNG streams untouched) and the same
//!    target, with the same budget ceiling.
//!
//! The gated row reuses `steps_per_sec` for the dimensionless ratio
//! cold-iterations / warm-iterations on purpose: being deterministic,
//! it gates exactly — any engine change that erodes how much the warm
//! start saves trips `bench_compare`, with zero machine noise. The raw
//! per-run counts are emitted as ungated info rows.
//!
//! [`Archive::warm_candidate`]: rdse_store::Archive::warm_candidate
//!
//! Knobs: `RDSE_BENCH_STEPS` overrides the cold/warm iteration budget.

use rdse_anneal::StopReason;
use rdse_mapping::{explore_parallel, ExploreOptions, ParallelOptions, WarmStart};
use rdse_workloads::{epicure_architecture, motion_detection_app};
use std::io::Write as _;

fn append_record(record: &str) {
    let Ok(path) = std::env::var("RDSE_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| writeln!(file, "{record}"));
    if let Err(e) = written {
        eprintln!("warning: cannot append bench record: {e}");
    }
}

fn options(seed: u64, iters: u64, target: Option<f64>, warm: Option<WarmStart>) -> ParallelOptions {
    ParallelOptions {
        base: ExploreOptions {
            max_iterations: iters,
            warmup_iterations: iters / 5,
            seed,
            target_cost: target,
            ..ExploreOptions::default()
        },
        chains: 1,
        threads: 1,
        exchange_every: 0,
        warm_start: warm,
        front_exchange: false,
    }
}

fn main() {
    let budget: u64 = std::env::var("RDSE_BENCH_STEPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3_000);

    let app = motion_detection_app();
    let arch = epicure_architecture(2000);

    // The "archived" donor: another seed, twice the budget — the shape
    // of a result the store would already hold for this (app, arch).
    let donor =
        explore_parallel(&app, &arch, &options(7, budget * 2, None, None)).expect("donor run");
    let donor_makespan = donor.evaluation.makespan.value();

    // Cold reference fixes the bar: the makespan this seed ends at.
    let cold_ref =
        explore_parallel(&app, &arch, &options(1, budget, None, None)).expect("cold reference");
    let target = cold_ref.chains[0].run.best_cost;

    // Same walk again, stopping the moment the bar is reached.
    let cold = explore_parallel(&app, &arch, &options(1, budget, Some(target), None))
        .expect("cold timed run");
    assert_eq!(
        cold.chains[0].run.stop,
        StopReason::TargetReached,
        "a run must reach its own final cost"
    );
    let cold_iters = cold.chains[0].run.iterations.max(1);

    let warm = explore_parallel(
        &app,
        &arch,
        &options(
            1,
            budget,
            Some(target),
            Some(WarmStart {
                mapping: donor.mapping.clone(),
            }),
        ),
    )
    .expect("warm timed run");
    let warm_reached = warm.chains[0].run.stop == StopReason::TargetReached;
    let warm_iters = warm.chains[0].run.iterations.max(1);
    let ratio = cold_iters as f64 / warm_iters as f64;

    println!(
        "bench warm_vs_cold/target          {target:>12.3} us \
         (donor best {donor_makespan:.3} us, budget {budget})"
    );
    println!("bench warm_vs_cold/cold_iters      {cold_iters:>12}");
    println!(
        "bench warm_vs_cold/warm_iters      {warm_iters:>12} ({})",
        if warm_reached {
            "target reached"
        } else {
            "budget exhausted before target"
        }
    );
    println!("bench warm_vs_cold/cold_over_warm  {ratio:>12.1}x");

    append_record(&format!(
        "{{\"name\":\"warm_vs_cold/cold_iters\",\"iters\":{cold_iters}}}"
    ));
    append_record(&format!(
        "{{\"name\":\"warm_vs_cold/warm_iters\",\"iters\":{warm_iters},\
         \"target_reached\":{warm_reached}}}"
    ));
    append_record(&format!(
        "{{\"name\":\"warm_vs_cold/cold_over_warm\",\"steps_per_sec\":{ratio:.3},\
         \"steps\":{cold_iters},\"seconds\":0}}"
    ));
}
