//! Append throughput of the persistent result store under each
//! [`SyncPolicy`].
//!
//! Every policy writes every record; they differ only in how often the
//! file is `fsync`ed — `always` once per append, `interval:N` every
//! Nth append, `never` only on close. The durability trade is the
//! point of the knob, so this bench pins down what each setting costs:
//! the acceptance bar is `interval`/`never` at or above `always`
//! throughput. Each timed run ends with one explicit `sync()` so
//! `never` cannot win by leaving bytes in the page cache, and each
//! store is reopened afterwards to assert the replay sees every record
//! before the number is reported.
//!
//! Results append to `RDSE_BENCH_JSON` (NDJSON) with `steps_per_sec` =
//! appends/second, gated by `bench_compare`.
//!
//! Knobs: `RDSE_BENCH_STEPS` overrides the per-policy append count.

use rdse_store::{CostBits, KeySpec, ResultStore, StoreRecord, SyncPolicy};
use serde::Value;
use std::io::Write as _;
use std::time::Instant;

fn append_record(record: &str) {
    let Ok(path) = std::env::var("RDSE_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| writeln!(file, "{record}"));
    if let Err(e) = written {
        eprintln!("warning: cannot append bench record: {e}");
    }
}

/// A record of realistic shape: a 3-member front and a mapping body in
/// the same ballpark as a served motion-detection result. `seed` keeps
/// the content keys distinct so the archive grows like a real log.
fn record(seed: u64) -> StoreRecord {
    let spec = KeySpec {
        app_json: r#"{"name":"motion","tasks":29}"#,
        arch_json: r#"{"family":"epicure","clbs":2000}"#,
        objective: "makespan",
        seed,
        iters: 5_000,
        warmup: 1_200,
        chains: 4,
        exchange_every: 500,
    };
    let best = CostBits::from_values(1234.5 + seed as f64, 1800.0, 42.25, 3.0);
    let mapping = Value::Map(vec![
        (
            "contexts".into(),
            Value::Seq((0..8).map(Value::U64).collect()),
        ),
        (
            "implementations".into(),
            Value::Seq((0..29).map(|t| Value::U64(t % 3)).collect()),
        ),
    ]);
    StoreRecord {
        key: spec.key(),
        pair: spec.pair(),
        objective: spec.objective.into(),
        seed,
        chains: spec.chains,
        iters: spec.iters,
        warmup: spec.warmup,
        exchange_every: spec.exchange_every,
        winner: 1,
        iterations: spec.iters,
        contexts: 3,
        hw_tasks: 12,
        clb_area: 1800,
        makespan_bits: best.makespan,
        best,
        front: vec![
            best,
            CostBits::from_values(1300.0, 1500.0, 40.0, 2.0),
            CostBits::from_values(1400.0, 1200.0, 38.0, 2.0),
        ],
        mapping,
    }
}

fn run_policy(label: &str, policy: SyncPolicy, appends: u64) -> f64 {
    let dir = std::env::temp_dir().join(format!("rdse_bench_store_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("{label}.aof"));
    let _ = std::fs::remove_file(&path);

    let mut store = ResultStore::open(&path, policy).expect("open store");
    let start = Instant::now();
    for seed in 0..appends {
        store.append(record(seed)).expect("append");
    }
    store.sync().expect("final sync");
    let elapsed = start.elapsed();
    drop(store);

    // The throughput number is only worth reporting if the log is
    // complete: replay must reconstruct every appended record.
    let reopened = ResultStore::open(&path, SyncPolicy::Never).expect("reopen");
    assert_eq!(
        reopened.archive().len() as u64,
        appends,
        "{label}: replay lost records"
    );
    assert!(
        reopened.replay_report().tail.is_none(),
        "{label}: torn tail after a clean run"
    );
    drop(reopened);
    let _ = std::fs::remove_file(&path);

    let rate = appends as f64 / elapsed.as_secs_f64();
    println!("bench store_sync/{label:<11} {rate:>12.0} appends/s ({appends} in {elapsed:?})");
    append_record(&format!(
        "{{\"name\":\"store_sync/{label}\",\"steps_per_sec\":{rate:.0},\
         \"steps\":{appends},\"seconds\":{:.6}}}",
        elapsed.as_secs_f64()
    ));
    rate
}

fn main() {
    let appends: u64 = std::env::var("RDSE_BENCH_STEPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);

    let always = run_policy("always", SyncPolicy::Always, appends);
    let interval = run_policy("interval64", SyncPolicy::Interval(64), appends);
    let never = run_policy("never", SyncPolicy::Never, appends);

    let interval_x = interval / always;
    let never_x = never / always;
    println!("bench store_sync/interval64_vs_always {interval_x:>8.2}x");
    println!("bench store_sync/never_vs_always      {never_x:>8.2}x");
    append_record(&format!(
        "{{\"name\":\"store_sync/interval64_vs_always\",\"ratio\":{interval_x:.3}}}"
    ));
    append_record(&format!(
        "{{\"name\":\"store_sync/never_vs_always\",\"ratio\":{never_x:.3}}}"
    ));
}
