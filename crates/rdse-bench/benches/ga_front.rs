//! Multi-objective quality of the evolutionary layer: NSGA-II front
//! versus the scalar GA's single point, and the operator bandit versus
//! the default uniform move mix.
//!
//! Every number here is **deterministic** — fixed seeds, no wall-clock
//! input — so the committed rows are machine-independent and exact:
//!
//! * `ga_front/hv_over_point` — hypervolume of the NSGA-II front over
//!   the hypervolume of the scalar GA's point, both against the same
//!   reference point (per-axis max over front ∪ point, + 1). A drop
//!   means the front stopped covering objective space it used to.
//! * `ga_front/front_size` — number of mutually non-dominated cost
//!   vectors the NSGA-II archive ends with.
//! * `ga_front/bandit_over_default` — best makespan of a default
//!   (uniform move mix) annealing run over the best makespan of the
//!   same run with the UCB operator bandit (`bandit_moves`). Above 1
//!   the bandit helps; the gate trips if the bandit starts hurting.
//!
//! The gated rows reuse the `steps_per_sec` key on purpose: being
//! deterministic they gate exactly through `bench_compare`, with zero
//! machine noise. Raw makespans are emitted as ungated info rows.
//!
//! Knobs: `RDSE_BENCH_STEPS` overrides the GA generation budget.

use rdse_baseline::{GaOptions, GeneticExplorer};
use rdse_mapping::{explore, hypervolume, Cost, CostVector, Dominance, ExploreOptions};
use rdse_workloads::{epicure_architecture, motion_detection_app};
use std::io::Write as _;

fn append_record(record: &str) {
    let Ok(path) = std::env::var("RDSE_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| writeln!(file, "{record}"));
    if let Err(e) = written {
        eprintln!("warning: cannot append bench record: {e}");
    }
}

fn main() {
    let generations: usize = std::env::var("RDSE_BENCH_STEPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);

    let app = motion_detection_app();
    let arch = epicure_architecture(2000);

    let ga_opts = |nsga2| GaOptions {
        population: 60,
        generations,
        stall_generations: generations,
        nsga2,
        seed: 1,
        ..GaOptions::default()
    };

    let scalar = GeneticExplorer::new(&app, &arch, ga_opts(false))
        .run()
        .expect("scalar GA runs cleanly");
    let nsga2 = GeneticExplorer::new(&app, &arch, ga_opts(true))
        .run()
        .expect("NSGA-II GA runs cleanly");

    let point = CostVector::from_summary(&scalar.evaluation.summary());
    let members = nsga2.front.members();
    let reference: Vec<f64> = (0..point.n_objectives())
        .map(|m| {
            members
                .iter()
                .map(|c| c.objective(m))
                .fold(point.objective(m), f64::max)
                + 1.0
        })
        .collect();
    let hv_front = hypervolume(members, &reference);
    let hv_point = hypervolume(&[point], &reference);
    let hv_ratio = hv_front / hv_point.max(f64::MIN_POSITIVE);
    assert!(
        members.iter().any(|m| m.dominates(&point) || *m == point),
        "the NSGA-II front must weakly dominate the scalar GA's point"
    );

    // Same annealing walk with and without the deterministic UCB
    // operator bandit — the only difference is how move kinds are
    // picked, so the makespan ratio isolates the bandit's value.
    let sa_opts = |bandit| ExploreOptions {
        max_iterations: 5_000,
        warmup_iterations: 1_200,
        seed: 1,
        bandit_moves: bandit,
        ..ExploreOptions::default()
    };
    let default_run = explore(&app, &arch, &sa_opts(false)).expect("default SA runs cleanly");
    let bandit_run = explore(&app, &arch, &sa_opts(true)).expect("bandit SA runs cleanly");
    let default_us = default_run.evaluation.makespan.value();
    let bandit_us = bandit_run.evaluation.makespan.value();
    let bandit_ratio = default_us / bandit_us.max(f64::MIN_POSITIVE);

    println!(
        "bench ga_front/scalar_makespan      {:>12.3} us",
        point.makespan
    );
    println!(
        "bench ga_front/nsga2_makespan       {:>12.3} us",
        nsga2.evaluation.makespan.value()
    );
    println!("bench ga_front/front_size           {:>12}", members.len());
    println!("bench ga_front/hv_over_point        {hv_ratio:>12.3}");
    println!("bench ga_front/default_sa_makespan  {default_us:>12.3} us");
    println!("bench ga_front/bandit_sa_makespan   {bandit_us:>12.3} us");
    println!("bench ga_front/bandit_over_default  {bandit_ratio:>12.4}");

    append_record(&format!(
        "{{\"name\":\"ga_front/scalar_makespan_us\",\"makespan_us\":{:.3}}}",
        point.makespan
    ));
    append_record(&format!(
        "{{\"name\":\"ga_front/nsga2_makespan_us\",\"makespan_us\":{:.3}}}",
        nsga2.evaluation.makespan.value()
    ));
    append_record(&format!(
        "{{\"name\":\"ga_front/front_size\",\"steps_per_sec\":{},\
         \"steps\":{generations},\"seconds\":0}}",
        members.len()
    ));
    append_record(&format!(
        "{{\"name\":\"ga_front/hv_over_point\",\"steps_per_sec\":{hv_ratio:.3},\
         \"steps\":{generations},\"seconds\":0}}"
    ));
    append_record(&format!(
        "{{\"name\":\"ga_front/bandit_over_default\",\"steps_per_sec\":{bandit_ratio:.4},\
         \"steps\":5000,\"seconds\":0}}"
    ));
}
