//! Fixed-seed smoke benchmark of the exploration engines: single-chain
//! [`explore`], the resumable [`Explorer`] driven in segments, and the
//! multi-chain [`explore_parallel`] portfolio at 1 and 4 worker
//! threads. Budgets are deliberately small — this is the perf
//! trajectory probe CI uploads on every PR (`BENCH_pr.json`), not a
//! quality experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdse_mapping::{explore, explore_parallel, ExploreOptions, Explorer, ParallelOptions};
use rdse_workloads::{epicure_architecture, motion_detection_app};
use std::hint::black_box;

const ITERS: u64 = 1_500;
const SEED: u64 = 7;

fn base_opts() -> ExploreOptions {
    ExploreOptions {
        max_iterations: ITERS,
        warmup_iterations: ITERS / 5,
        seed: SEED,
        ..ExploreOptions::default()
    }
}

fn bench_single_chain(c: &mut Criterion) {
    let app = motion_detection_app();
    let arch = epicure_architecture(2000);
    let mut group = c.benchmark_group("explore");
    group.sample_size(10);
    group.bench_function("single_chain", |b| {
        b.iter(|| black_box(explore(&app, &arch, &base_opts()).expect("explores cleanly")));
    });
    group.bench_function("segmented_chain", |b| {
        b.iter(|| {
            let mut chain =
                Explorer::new(&app, &arch, &base_opts()).expect("initial solution exists");
            while chain.run_segment(250) {}
            black_box(chain.into_outcome())
        });
    });
    group.finish();
}

fn bench_portfolio(c: &mut Criterion) {
    let app = motion_detection_app();
    let arch = epicure_architecture(2000);
    let mut group = c.benchmark_group("explore_parallel");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("chains4", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(
                        explore_parallel(
                            &app,
                            &arch,
                            &ParallelOptions {
                                base: ExploreOptions {
                                    max_iterations: 4 * ITERS,
                                    warmup_iterations: 4 * (ITERS / 5),
                                    ..base_opts()
                                },
                                chains: 4,
                                threads,
                                exchange_every: 250,
                                warm_start: None,
                                front_exchange: false,
                            },
                        )
                        .expect("explores cleanly"),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_single_chain, bench_portfolio);
criterion_main!(benches);
