//! Step-throughput microbench of the incremental evaluation engine.
//!
//! Compares annealing steps/second on the fig3 workload (motion
//! detection × EPICURE at 2 000 CLBs) between:
//!
//! * **incremental** — the production [`MappingProblem`]: in-place
//!   moves, arena-backed [`Evaluator`] scoring, O(touched) delta undo;
//! * **legacy_clone** — a faithful reimplementation of the
//!   pre-refactor engine: every `try_move` clones the full `Mapping` +
//!   `Evaluation` and re-scores through the from-scratch
//!   [`evaluate`], every `undo` restores the clones.
//!
//! Both engines walk the *same* RNG stream and produce bit-identical
//! best costs (asserted below), so the ratio is a pure engine-overhead
//! measurement. Results append to `RDSE_BENCH_JSON` (NDJSON) next to
//! the criterion records, with an explicit `steps_per_sec` field that
//! CI surfaces in the job log.
//!
//! Knobs: `RDSE_BENCH_STEPS` overrides the measured step count.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use rdse_anneal::{Annealer, LamSchedule, Problem, RunOptions};
use rdse_mapping::moves::{propose_impl_move, propose_pair_move, MoveScratch};
use rdse_mapping::{
    evaluate, random_initial, Evaluation, ExploreOptions, Explorer, Mapping, MappingError,
    Objective,
};
use rdse_model::{Architecture, TaskGraph};
use rdse_workloads::{epicure_architecture, motion_detection_app};
use std::io::Write as _;
use std::time::Instant;

/// The pre-refactor clone-everything problem, kept verbatim as the
/// benchmark baseline.
struct LegacyProblem<'a> {
    app: &'a TaskGraph,
    arch: &'a Architecture,
    mapping: Mapping,
    current: Evaluation,
    scratch: MoveScratch,
}

impl<'a> LegacyProblem<'a> {
    fn new(
        app: &'a TaskGraph,
        arch: &'a Architecture,
        mapping: Mapping,
    ) -> Result<Self, MappingError> {
        let current = evaluate(app, arch, &mapping)?;
        Ok(LegacyProblem {
            app,
            arch,
            mapping,
            current,
            scratch: MoveScratch::default(),
        })
    }
}

impl Problem for LegacyProblem<'_> {
    type Move = (Mapping, Evaluation);
    type Snapshot = (Mapping, Evaluation);
    type Cost = f64;

    fn cost(&self) -> f64 {
        self.current.makespan.value()
    }

    fn n_move_classes(&self) -> usize {
        2
    }

    fn try_move(&mut self, rng: &mut dyn RngCore, class: usize) -> Option<(Self::Move, f64)> {
        let prev = (self.mapping.clone(), self.current.clone());
        let outcome = match class {
            0 => propose_pair_move(
                self.app,
                self.arch,
                &mut self.mapping,
                rng,
                &mut self.scratch,
            ),
            _ => propose_impl_move(
                self.app,
                self.arch,
                &mut self.mapping,
                rng,
                &mut self.scratch,
            ),
        };
        if outcome.is_none() {
            self.mapping = prev.0;
            self.current = prev.1;
            return None;
        }
        match evaluate(self.app, self.arch, &self.mapping) {
            Ok(eval) => {
                self.current = eval;
                let cost = self.cost();
                Some((prev, cost))
            }
            Err(_) => {
                self.mapping = prev.0;
                self.current = prev.1;
                None
            }
        }
    }

    fn undo(&mut self, mv: Self::Move) {
        self.mapping = mv.0;
        self.current = mv.1;
    }

    fn snapshot(&self) -> Self::Snapshot {
        (self.mapping.clone(), self.current.clone())
    }

    fn restore(&mut self, snapshot: &Self::Snapshot) {
        self.mapping = snapshot.0.clone();
        self.current = snapshot.1.clone();
    }
}

/// Builds a legacy annealer wired exactly as `Explorer::new` wires the
/// incremental one (same initial solution, same RNG stream, same
/// schedule), so both engines take identical walks.
fn legacy_annealer<'a>(
    app: &'a TaskGraph,
    arch: &'a Architecture,
    opts: &ExploreOptions,
) -> Annealer<LegacyProblem<'a>, LamSchedule> {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let initial = random_initial(app, arch, &mut rng);
    let problem = LegacyProblem::new(app, arch, initial).expect("feasible initial solution");
    Annealer::new(
        problem,
        LamSchedule::new(opts.lambda),
        RunOptions {
            max_iterations: opts.max_iterations,
            warmup_iterations: opts.warmup_iterations,
            seed: opts.seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            adaptive_moves: opts.adaptive_moves,
            ..RunOptions::default()
        },
    )
}

fn opts(steps: u64) -> ExploreOptions {
    ExploreOptions {
        max_iterations: steps,
        warmup_iterations: steps / 20,
        seed: 1,
        objective: Objective::MinimizeMakespan,
        ..ExploreOptions::default()
    }
}

fn append_record(record: &str) {
    let Ok(path) = std::env::var("RDSE_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| writeln!(file, "{record}"));
    if let Err(e) = written {
        eprintln!("warning: cannot append bench record: {e}");
    }
}

fn main() {
    let app = motion_detection_app();
    let arch = epicure_architecture(2000);
    let steps: u64 = std::env::var("RDSE_BENCH_STEPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);

    // Parity: at an equal (small) budget the two engines are
    // bit-identical — the refactor changed the cost of a step, not the
    // walk.
    let parity = opts(10_000);
    let mut incremental = Explorer::new(&app, &arch, &parity).expect("explores");
    incremental.run_segment(u64::MAX);
    let mut legacy = legacy_annealer(&app, &arch, &parity);
    legacy.run_segment(u64::MAX);
    assert_eq!(
        incremental.best_cost().to_bits(),
        legacy.best_cost().to_bits(),
        "legacy and incremental engines diverged"
    );

    // Throughput: one warm-up run each, then one timed run.
    let run_incremental = |steps: u64| {
        let mut chain = Explorer::new(&app, &arch, &opts(steps)).expect("explores");
        let start = Instant::now();
        chain.run_segment(u64::MAX);
        (chain.iterations(), start.elapsed())
    };
    // The legacy engine is several times slower; a quarter of the
    // budget keeps bench wall-clock in check without hurting the
    // steps/sec estimate.
    let legacy_steps = (steps / 4).max(1_000);
    let run_legacy = |steps: u64| {
        let mut annealer = legacy_annealer(&app, &arch, &opts(steps));
        let start = Instant::now();
        annealer.run_segment(u64::MAX);
        (annealer.iterations(), start.elapsed())
    };

    run_incremental(steps.min(20_000));
    let (inc_steps, inc_time) = run_incremental(steps);
    run_legacy(legacy_steps.min(5_000));
    let (leg_steps, leg_time) = run_legacy(legacy_steps);

    let inc_rate = inc_steps as f64 / inc_time.as_secs_f64();
    let leg_rate = leg_steps as f64 / leg_time.as_secs_f64();
    let speedup = inc_rate / leg_rate;

    println!(
        "bench anneal_steps/incremental  {inc_rate:>12.0} steps/s ({inc_steps} steps in {inc_time:?})"
    );
    println!(
        "bench anneal_steps/legacy_clone {leg_rate:>12.0} steps/s ({leg_steps} steps in {leg_time:?})"
    );
    println!("bench anneal_steps/speedup      {speedup:>12.2}x");

    append_record(&format!(
        "{{\"name\":\"anneal_steps/incremental\",\"steps_per_sec\":{inc_rate:.0},\
         \"steps\":{inc_steps},\"seconds\":{:.6}}}",
        inc_time.as_secs_f64()
    ));
    append_record(&format!(
        "{{\"name\":\"anneal_steps/legacy_clone\",\"steps_per_sec\":{leg_rate:.0},\
         \"steps\":{leg_steps},\"seconds\":{:.6}}}",
        leg_time.as_secs_f64()
    ));
    append_record(&format!(
        "{{\"name\":\"anneal_steps/speedup\",\"ratio\":{speedup:.3}}}"
    ));
}
