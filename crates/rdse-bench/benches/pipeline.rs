//! End-to-end throughput benchmarks: one solution evaluation, one full
//! exploration at the paper's Fig. 2 protocol, one GA run (the E3
//! runtime comparison), and one discrete-event validation.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rdse_baseline::{GaOptions, GeneticExplorer};
use rdse_mapping::{evaluate, explore, random_initial, ExploreOptions};
use rdse_sim::{simulate, SimConfig};
use rdse_workloads::{epicure_architecture, motion_detection_app};
use std::hint::black_box;

fn bench_evaluate(c: &mut Criterion) {
    let app = motion_detection_app();
    let arch = epicure_architecture(2000);
    let mut rng = StdRng::seed_from_u64(5);
    let mapping = random_initial(&app, &arch, &mut rng);
    c.bench_function("evaluate_motion_mapping", |b| {
        b.iter(|| black_box(evaluate(&app, &arch, &mapping).expect("feasible").makespan));
    });
}

fn bench_explore(c: &mut Criterion) {
    let app = motion_detection_app();
    let arch = epicure_architecture(2000);
    let mut group = c.benchmark_group("explore_motion");
    group.sample_size(10);
    group.bench_function("sa_5000_iters_fig2_protocol", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let out = explore(
                &app,
                &arch,
                &ExploreOptions {
                    max_iterations: 5_000,
                    warmup_iterations: 1_200,
                    seed,
                    ..ExploreOptions::default()
                },
            )
            .expect("explores cleanly");
            black_box(out.evaluation.makespan)
        });
    });
    group.bench_function("ga_pop100_30_generations", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let out = GeneticExplorer::new(
                &app,
                &arch,
                GaOptions {
                    population: 100,
                    generations: 30,
                    stall_generations: 30,
                    seed,
                    ..GaOptions::default()
                },
            )
            .run()
            .expect("GA runs cleanly");
            black_box(out.evaluation.makespan)
        });
    });
    group.finish();
}

fn bench_simulate(c: &mut Criterion) {
    let app = motion_detection_app();
    let arch = epicure_architecture(2000);
    let mut rng = StdRng::seed_from_u64(9);
    let mapping = random_initial(&app, &arch, &mut rng);
    let mut group = c.benchmark_group("des");
    group.bench_function("contention_free", |b| {
        b.iter(|| {
            black_box(
                simulate(&app, &arch, &mapping, &SimConfig::contention_free())
                    .expect("simulates")
                    .makespan,
            )
        });
    });
    group.bench_function("exclusive_bus", |b| {
        let cfg = SimConfig {
            exclusive_bus: true,
            record_events: false,
        };
        b.iter(|| {
            black_box(
                simulate(&app, &arch, &mapping, &cfg)
                    .expect("simulates")
                    .makespan,
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_evaluate, bench_explore, bench_simulate);
criterion_main!(benches);
