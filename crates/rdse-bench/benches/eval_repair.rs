//! Microbench of the bounded-repair delta path against the full
//! re-evaluation it replaces.
//!
//! Walks two workloads — fig3 (motion detection × EPICURE at 2 000
//! CLBs, 29 tasks: the repair cone is almost the whole graph) and a
//! 200-task layered DAG (cones are a small fraction of a full pass) —
//! with the production move proposers, each twice over the *identical*
//! RNG/move sequence (bit-identical feasibility guarantees the walks
//! coincide):
//!
//! * **delta** — [`Evaluator::evaluate_delta`] + coin-flip
//!   [`Evaluator::revert_delta`], the annealer's actual hot shape:
//!   certified ordered sweep over the repair cone, full-pass fall-back
//!   when the maintained topological order cannot absorb the move;
//! * **full** — [`Evaluator::evaluate`] of every post-move mapping,
//!   the arena-backed full pass (rejection is a plain mapping undo).
//!
//! A parity prefix asserts the two are bit-identical before anything is
//! timed, so the ratio is a pure repair-machinery measurement. Results
//! append to `RDSE_BENCH_JSON` (NDJSON) with explicit `steps_per_sec`
//! fields (gated by `bench_compare`) plus a stats record carrying the
//! repair/fall-back/cone counters.
//!
//! Knobs: `RDSE_BENCH_STEPS` overrides the measured step count.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdse_mapping::moves::{propose_impl_move, propose_pair_move, MoveScratch};
use rdse_mapping::{random_initial, Evaluator, Mapping};
use rdse_model::{Architecture, TaskGraph};
use rdse_workloads::{epicure_architecture, layered_dag, motion_detection_app, LayeredDagConfig};
use std::hint::black_box;
use std::io::Write as _;
use std::time::Instant;

fn append_record(record: &str) {
    let Ok(path) = std::env::var("RDSE_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| writeln!(file, "{record}"));
    if let Err(e) = written {
        eprintln!("warning: cannot append bench record: {e}");
    }
}

/// Drives `steps` proposals through the delta path, coin-flip
/// reverting, optionally checking every summary against a from-scratch
/// evaluator. Returns the number of applied (scored) moves.
fn delta_walk(
    app: &TaskGraph,
    arch: &Architecture,
    evaluator: &mut Evaluator,
    mapping: &mut Mapping,
    rng: &mut StdRng,
    steps: u64,
    check: Option<&mut Evaluator>,
) -> u64 {
    let mut scratch = MoveScratch::default();
    let mut reference = check;
    let mut applied = 0u64;
    for i in 0..steps {
        let outcome = if i % 2 == 0 {
            propose_pair_move(app, arch, mapping, rng, &mut scratch)
        } else {
            propose_impl_move(app, arch, mapping, rng, &mut scratch)
        };
        let Some(o) = outcome else { continue };
        applied += 1;
        match black_box(evaluator.evaluate_delta(mapping, o.delta.task())) {
            Ok(summary) => {
                if let Some(full) = reference.as_deref_mut() {
                    let fresh = full.evaluate(mapping).expect("delta accepted => feasible");
                    assert_eq!(
                        summary, fresh,
                        "delta and full evaluation diverged at step {i}"
                    );
                }
                if rng.random::<bool>() {
                    evaluator.revert_delta();
                    o.delta.undo(mapping);
                }
            }
            Err(_) => o.delta.undo(mapping),
        }
    }
    applied
}

/// Drives the same walk shape as [`delta_walk`] but scores every move
/// with the arena-backed *full* pass (rejection = plain mapping undo).
/// Feasibility and coin flips are bit-identical to the delta walk, so
/// both walks traverse the same mapping sequence.
fn full_walk(
    app: &TaskGraph,
    arch: &Architecture,
    evaluator: &mut Evaluator,
    mapping: &mut Mapping,
    rng: &mut StdRng,
    steps: u64,
) -> u64 {
    let mut scratch = MoveScratch::default();
    let mut applied = 0u64;
    for i in 0..steps {
        let outcome = if i % 2 == 0 {
            propose_pair_move(app, arch, mapping, rng, &mut scratch)
        } else {
            propose_impl_move(app, arch, mapping, rng, &mut scratch)
        };
        let Some(o) = outcome else { continue };
        applied += 1;
        match black_box(evaluator.evaluate(mapping)) {
            Ok(_) => {
                if rng.random::<bool>() {
                    o.delta.undo(mapping);
                }
            }
            Err(_) => o.delta.undo(mapping),
        }
    }
    applied
}

fn run_workload(label: &str, app: &TaskGraph, arch: &Architecture, seed: u64, steps: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mapping = random_initial(app, arch, &mut rng);
    let mut evaluator = Evaluator::new(app, arch);
    evaluator.evaluate(&mapping).expect("feasible initial");

    // Parity prefix: every delta summary must equal the from-scratch
    // summary, bit for bit, before we time anything.
    let mut reference = Evaluator::new(app, arch);
    delta_walk(
        app,
        arch,
        &mut evaluator,
        &mut mapping,
        &mut rng,
        2_000,
        Some(&mut reference),
    );

    // Warm-up, then snapshot (mapping + RNG) so both timed walks take
    // the identical move sequence.
    delta_walk(
        app,
        arch,
        &mut evaluator,
        &mut mapping,
        &mut rng,
        steps.min(20_000),
        None,
    );
    let mapping_snap = mapping.clone();
    let rng_snap = rng.clone();

    let stats_before = evaluator.stats();
    let start = Instant::now();
    let applied = delta_walk(
        app,
        arch,
        &mut evaluator,
        &mut mapping,
        &mut rng,
        steps,
        None,
    );
    let delta_time = start.elapsed();

    // The identical walk, scored by the arena-backed full pass. Warm
    // the arenas on clones so the timed walk starts from the snapshot.
    let mut full_mapping = mapping_snap;
    let mut full_rng = rng_snap;
    let mut full_eval = Evaluator::new(app, arch);
    {
        let mut warm_mapping = full_mapping.clone();
        let mut warm_rng = full_rng.clone();
        full_walk(
            app,
            arch,
            &mut full_eval,
            &mut warm_mapping,
            &mut warm_rng,
            steps.min(20_000),
        );
    }
    let start = Instant::now();
    let full_applied = full_walk(
        app,
        arch,
        &mut full_eval,
        &mut full_mapping,
        &mut full_rng,
        steps,
    );
    let full_time = start.elapsed();

    assert_eq!(full_mapping, mapping, "delta and full walks diverged");

    let delta_rate = applied as f64 / delta_time.as_secs_f64();
    let full_rate = full_applied as f64 / full_time.as_secs_f64();
    let speedup = delta_rate / full_rate;

    let stats = evaluator.stats();
    let repairs = stats.repairs - stats_before.repairs;
    let fallbacks = stats.fallbacks - stats_before.fallbacks;
    let cone_nodes = stats.cone_nodes - stats_before.cone_nodes;
    let mean_cone = cone_nodes as f64 / (repairs.max(1)) as f64;

    println!("bench eval_repair/delta_{label}  {delta_rate:>12.0} steps/s ({applied} scored moves in {delta_time:?})");
    println!("bench eval_repair/full_{label}   {full_rate:>12.0} steps/s ({full_applied} scored moves in {full_time:?})");
    println!("bench eval_repair/speedup_{label} {speedup:>11.2}x");
    println!(
        "bench eval_repair/stats_{label}  repairs {repairs}, fallbacks {fallbacks}, \
         mean cone {mean_cone:.1}, max cone {}",
        stats.max_cone
    );

    append_record(&format!(
        "{{\"name\":\"eval_repair/delta_{label}\",\"steps_per_sec\":{delta_rate:.0},\
         \"steps\":{applied},\"seconds\":{:.6}}}",
        delta_time.as_secs_f64()
    ));
    append_record(&format!(
        "{{\"name\":\"eval_repair/full_{label}\",\"steps_per_sec\":{full_rate:.0},\
         \"steps\":{full_applied},\"seconds\":{:.6}}}",
        full_time.as_secs_f64()
    ));
    append_record(&format!(
        "{{\"name\":\"eval_repair/stats_{label}\",\"repairs\":{repairs},\
         \"fallbacks\":{fallbacks},\"mean_cone\":{mean_cone:.2},\
         \"max_cone\":{}}}",
        stats.max_cone
    ));
}

fn main() {
    let steps: u64 = std::env::var("RDSE_BENCH_STEPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);

    let fig3_app = motion_detection_app();
    let fig3_arch = epicure_architecture(2000);
    run_workload("fig3", &fig3_app, &fig3_arch, 7, steps);

    // A graph large enough that a repair cone is a small fraction of a
    // full pass (same shape as batch_vs_single's large workload).
    let layered = layered_dag(
        &LayeredDagConfig {
            layers: 20,
            width: 10,
            edge_percent: 30,
            hw_percent: 60,
        },
        42,
    );
    let layered_arch = epicure_architecture(4000);
    run_workload("layered200", &layered, &layered_arch, 9, steps);
}
