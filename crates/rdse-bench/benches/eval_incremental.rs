//! Ablation A1 — the §4.4 claim: after a local move, the longest path
//! "may in some cases be obtained incrementally by means of a
//! Woodbury-type update formula". This bench compares, on the motion
//! benchmark's search graph and on larger random DAGs:
//!
//! * full longest-path recomputation (O(V+E) topological DP),
//! * the (max,+) closure's rank-1 Woodbury update on edge insertion
//!   (O(V²), but yielding *all-pairs* — and the makespan — without a
//!   full rebuild),
//! * full (max,+) closure recomputation (what the update replaces).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rdse_graph::{dag_longest_path, MaxPlusClosure, NodeId, TransitiveClosure};
use rdse_mapping::{random_initial, SearchGraph};
use rdse_workloads::{epicure_architecture, layered_dag, motion_detection_app, LayeredDagConfig};
use std::hint::black_box;

/// A candidate edge to insert plus the graph context.
fn motion_search_graph() -> (rdse_graph::Digraph, Vec<f64>) {
    let app = motion_detection_app();
    let arch = epicure_architecture(2000);
    let mut rng = StdRng::seed_from_u64(3);
    let mapping = random_initial(&app, &arch, &mut rng);
    let sg = SearchGraph::build(&app, &arch, &mapping);
    (sg.graph().to_digraph(), sg.node_weights().to_vec())
}

fn find_insertable(g: &rdse_graph::Digraph) -> (NodeId, NodeId) {
    let tc = TransitiveClosure::of(g).expect("search graph is acyclic");
    for u in g.nodes() {
        for v in g.nodes() {
            if u != v && !g.has_edge(u, v) && !tc.would_create_cycle(u, v) {
                return (u, v);
            }
        }
    }
    panic!("no insertable edge found");
}

fn bench_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval_after_edge_insertion");

    // Motion benchmark (29 nodes incl. the virtual source).
    {
        let (g, w) = motion_search_graph();
        let (u, v) = find_insertable(&g);

        group.bench_function("motion/full_longest_path", |b| {
            let mut g2 = g.clone();
            g2.add_edge(u, v, 1.0).expect("insertable edge");
            b.iter(|| black_box(dag_longest_path(&g2, &w).expect("acyclic").makespan()));
        });
        group.bench_function("motion/woodbury_insert", |b| {
            let base = MaxPlusClosure::of(&g).expect("acyclic");
            b.iter(|| {
                let mut d = base.clone();
                d.insert_edge(u, v, 1.0);
                black_box(d.dist(NodeId(0), NodeId(5)))
            });
        });
        group.bench_function("motion/closure_recompute", |b| {
            let mut g2 = g.clone();
            g2.add_edge(u, v, 1.0).expect("insertable edge");
            b.iter(|| black_box(MaxPlusClosure::of(&g2).expect("acyclic")));
        });
    }

    // Larger synthetic graphs: where the trade-off flips.
    for (layers, width) in [(10usize, 10usize), (20, 10)] {
        let app = layered_dag(
            &LayeredDagConfig {
                layers,
                width,
                edge_percent: 30,
                hw_percent: 60,
            },
            7,
        );
        let g = app.precedence_graph();
        let w: Vec<f64> = (0..g.n_nodes()).map(|i| (i % 9) as f64 + 1.0).collect();
        let (u, v) = find_insertable(&g);
        let n = g.n_nodes();

        group.bench_with_input(BenchmarkId::new("full_longest_path", n), &n, |b, _| {
            let mut g2 = g.clone();
            g2.add_edge(u, v, 1.0).expect("insertable edge");
            b.iter(|| black_box(dag_longest_path(&g2, &w).expect("acyclic").makespan()));
        });
        group.bench_with_input(BenchmarkId::new("woodbury_insert", n), &n, |b, _| {
            let base = MaxPlusClosure::of(&g).expect("acyclic");
            b.iter(|| {
                let mut d = base.clone();
                d.insert_edge(u, v, 1.0);
                black_box(d.dist(NodeId(0), NodeId((n - 1) as u32)))
            });
        });
        group.bench_with_input(BenchmarkId::new("closure_recompute", n), &n, |b, _| {
            let mut g2 = g.clone();
            g2.add_edge(u, v, 1.0).expect("insertable edge");
            b.iter(|| black_box(MaxPlusClosure::of(&g2).expect("acyclic")));
        });
    }

    group.finish();
}

fn bench_cycle_check(c: &mut Criterion) {
    let (g, _) = motion_search_graph();
    let (u, v) = find_insertable(&g);
    let tc = TransitiveClosure::of(&g).expect("acyclic");
    let mut group = c.benchmark_group("cycle_check");
    group.bench_function("closure_bit_test", |b| {
        b.iter(|| black_box(tc.would_create_cycle(u, v)));
    });
    group.bench_function("dfs_reachability", |b| {
        b.iter(|| black_box(rdse_graph::topo::reaches(&g, v, u)));
    });
    group.finish();
}

criterion_group!(benches, bench_eval, bench_cycle_check);
criterion_main!(benches);
