//! Throughput of speculative parallel annealing against the
//! sequential engine, on the paper's fig3 motion graph and the
//! 200-task layered DAG.
//!
//! For each workload the same walk runs at speculation width W ∈
//! {1, 4, 8}; every speculative run is asserted **bit-identical** to
//! the sequential one (mapping, makespan bits, accept/reject counts)
//! before anything is timed. Three kinds of rows append to
//! `RDSE_BENCH_JSON`:
//!
//! * absolute wall-clock rows (`seq_*`, `w4_*`, `w8_*`, steps/s —
//!   gated by `bench_compare`),
//! * the wall-clock ratio `speedup_*_w8` (informational `ratio`
//!   field — wall speedup needs real cores, so it is **not** gated;
//!   on a single-core runner speculation is pure overhead and the
//!   ratio honestly lands below 1),
//! * the gated `useful_prefix_layered200_w8` row: the mean number of
//!   walk steps each speculation round commits (thread-invariant — a
//!   pure function of the walk). Each round's critical path on a
//!   wide-enough pool is about two delta evaluations (one resync of
//!   the previous round's commit, one chunk candidate), so a prefix
//!   of P models a ~P/2 wall speedup once the pool has cores to
//!   spend. Being deterministic, the row gates the *algorithmic*
//!   payoff of speculation on every runner, single-core CI included
//!   (the `warm_vs_cold/cold_over_warm` idiom: a dimensionless,
//!   deterministic quantity in the `steps_per_sec` field on purpose).
//!
//! Knobs: `RDSE_BENCH_STEPS` overrides the per-run iteration budget.

use rdse_mapping::{ExploreOptions, ExploreOutcome, Explorer};
use rdse_model::{Architecture, TaskGraph};
use rdse_workloads::{epicure_architecture, layered_dag, motion_detection_app, LayeredDagConfig};
use std::io::Write as _;

fn append_record(record: &str) {
    let Ok(path) = std::env::var("RDSE_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| writeln!(file, "{record}"));
    if let Err(e) = written {
        eprintln!("warning: cannot append bench record: {e}");
    }
}

fn run_chain(app: &TaskGraph, arch: &Architecture, iters: u64, w: usize) -> ExploreOutcome {
    let opts = ExploreOptions {
        max_iterations: iters,
        warmup_iterations: iters / 10,
        seed: 11,
        speculate: w,
        ..ExploreOptions::default()
    };
    let mut chain = Explorer::new(app, arch, &opts).expect("initial solution exists");
    while chain.run_segment(4096) {}
    chain.into_outcome()
}

fn assert_same_walk(seq: &ExploreOutcome, spec: &ExploreOutcome, label: &str) {
    assert_eq!(seq.mapping, spec.mapping, "{label}: mapping diverged");
    assert_eq!(
        seq.evaluation.makespan.value().to_bits(),
        spec.evaluation.makespan.value().to_bits(),
        "{label}: makespan bits diverged"
    );
    assert_eq!(seq.run.accepted, spec.run.accepted, "{label}: accept count");
    assert_eq!(seq.run.rejected, spec.run.rejected, "{label}: reject count");
}

fn run_workload(label: &str, app: &TaskGraph, arch: &Architecture, iters: u64) -> ExploreOutcome {
    // Parity before timing: a short walk at every width must match the
    // sequential walk bit for bit.
    let parity_iters = iters.min(3_000);
    let parity_seq = run_chain(app, arch, parity_iters, 1);
    for w in [4, 8] {
        let parity_spec = run_chain(app, arch, parity_iters, w);
        assert_same_walk(&parity_seq, &parity_spec, &format!("{label} parity W={w}"));
    }

    let seq = run_chain(app, arch, iters, 1);
    let mut rates = Vec::new();
    for (name, w) in [("seq", 1usize), ("w4", 4), ("w8", 8)] {
        let out = if w == 1 {
            seq.clone()
        } else {
            run_chain(app, arch, iters, w)
        };
        if w > 1 {
            assert_same_walk(&seq, &out, &format!("{label} W={w}"));
        }
        let secs = out.run.elapsed.as_secs_f64().max(1e-9);
        let rate = out.run.iterations as f64 / secs;
        println!(
            "bench speculate/{name}_{label} {rate:>12.0} steps/s \
             ({} steps in {:?})",
            out.run.iterations, out.run.elapsed
        );
        append_record(&format!(
            "{{\"name\":\"speculate/{name}_{label}\",\"steps_per_sec\":{rate:.0},\
             \"steps\":{},\"seconds\":{:.6}}}",
            out.run.iterations, secs
        ));
        rates.push((w, rate, out));
    }

    let seq_rate = rates[0].1;
    let w8_rate = rates[2].1;
    let speedup = w8_rate / seq_rate;
    println!(
        "bench speculate/speedup_{label}_w8 {speedup:>10.2}x (wall, {} cores)",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    append_record(&format!(
        "{{\"name\":\"speculate/speedup_{label}_w8\",\"ratio\":{speedup:.3}}}"
    ));
    rates.pop().expect("w8 row exists").2
}

fn main() {
    let iters: u64 = std::env::var("RDSE_BENCH_STEPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50_000);

    let fig3_app = motion_detection_app();
    let fig3_arch = epicure_architecture(2000);
    run_workload("fig3", &fig3_app, &fig3_arch, iters);

    let layered = layered_dag(
        &LayeredDagConfig {
            layers: 20,
            width: 10,
            edge_percent: 30,
            hw_percent: 60,
        },
        42,
    );
    let layered_arch = epicure_architecture(4000);
    let w8 = run_workload("layered200", &layered, &layered_arch, iters);

    // The deterministic gate: how many walk steps each speculation
    // round extracts at W=8. Pool-size invariant, so identical on
    // every runner; ≥ 1.5 is the bar for speculation paying for its
    // ~2-evaluation round critical path on a multi-core pool.
    let stats = w8.eval_stats;
    let prefix = stats.mean_useful_prefix();
    println!(
        "bench speculate/useful_prefix_layered200_w8 {prefix:>8.3} steps/round \
         ({} committed over {} rounds, {} wasted)",
        stats.spec_committed, stats.spec_rounds, stats.spec_wasted
    );
    append_record(&format!(
        "{{\"name\":\"speculate/useful_prefix_layered200_w8\",\"steps_per_sec\":{prefix:.3},\
         \"steps\":{},\"seconds\":0}}",
        stats.spec_committed
    ));
}
