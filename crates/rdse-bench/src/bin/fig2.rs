//! Reproduction of **Fig. 2**: evolution of execution time and number
//! of contexts during a typical exploration of the motion-detection
//! application on a 2 000-CLB device.
//!
//! Paper reference points: initial random solution ≈ 67.9 ms with one
//! context; 1 200 iterations at infinite temperature with no average
//! improvement (execution time swinging between ~35 and ~70 ms,
//! contexts between 1 and 8); adaptive cooling then drives the
//! execution time under the 40 ms constraint, finishing at 18.1 ms with
//! 3 contexts after 5 000 iterations.
//!
//! Usage: `fig2 [--iters N] [--warmup N] [--clbs N] [--seed N] [--out F]`

use rdse_bench::{arg_num, arg_value, ascii_plot, write_csv};
use rdse_mapping::{explore, ExploreOptions};
use rdse_workloads::{epicure_architecture, motion_detection_app, MOTION_DEADLINE};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let iters: u64 = arg_num(&args, "--iters", 5_000);
    let warmup: u64 = arg_num(&args, "--warmup", 1_200);
    let clbs: u32 = arg_num(&args, "--clbs", 2_000);
    let seed: u64 = arg_num(&args, "--seed", 1);
    let lambda: f64 = arg_num(&args, "--lambda", 0.5);
    let out = arg_value(&args, "--out").unwrap_or_else(|| "results/fig2.csv".into());

    let app = motion_detection_app();
    let arch = epicure_architecture(clbs);

    let outcome = explore(
        &app,
        &arch,
        &ExploreOptions {
            max_iterations: iters,
            warmup_iterations: warmup,
            seed,
            trace_every: 10,
            lambda,
            ..ExploreOptions::default()
        },
    )
    .expect("motion benchmark explores cleanly");

    let trace = &outcome.run.trace;
    let find = |names: &[(&'static str, f64)], key: &str| {
        names
            .iter()
            .find(|(n, _)| *n == key)
            .map(|(_, v)| *v)
            .unwrap_or(f64::NAN)
    };

    let exec: Vec<(f64, f64)> = trace
        .iter()
        .map(|t| (t.iteration as f64, find(&t.observables, "makespan_ms")))
        .collect();
    let ctxs: Vec<(f64, f64)> = trace
        .iter()
        .map(|t| (t.iteration as f64, find(&t.observables, "n_contexts")))
        .collect();

    println!(
        "{}",
        ascii_plot(
            "Fig. 2a — execution time (ms) vs iteration",
            &[("exec ms", &exec)],
            78,
            18
        )
    );
    println!(
        "{}",
        ascii_plot(
            "Fig. 2b — number of contexts vs iteration",
            &[("contexts", &ctxs)],
            78,
            10
        )
    );

    let initial_ms = outcome.run.initial_cost / 1000.0;
    let best_ms = outcome.run.best_cost / 1000.0;
    println!("device size            : {clbs} CLBs");
    println!("iterations             : {iters} ({warmup} at infinite temperature)");
    println!("initial execution time : {initial_ms:.1} ms (paper: 67.9 ms)");
    println!(
        "warm-up range          : {:.1} .. {:.1} ms (paper: ~35 .. ~70 ms)",
        outcome.run.warmup.min() / 1000.0,
        outcome.run.warmup.max() / 1000.0
    );
    println!(
        "final execution time   : {best_ms:.1} ms with {} contexts (paper: 18.1 ms, 3 contexts)",
        outcome.evaluation.n_contexts
    );
    println!(
        "constraint             : {} -> {}",
        MOTION_DEADLINE,
        if outcome.evaluation.makespan <= MOTION_DEADLINE {
            "MET"
        } else {
            "MISSED"
        }
    );
    println!(
        "moves                  : {} accepted / {} rejected / {} infeasible, wall {:?}",
        outcome.run.accepted, outcome.run.rejected, outcome.run.infeasible, outcome.run.elapsed
    );
    println!(
        "final breakdown        : initial reconfig {:.1} ms + dynamic reconfig {:.1} ms + comp/comm {:.1} ms",
        outcome.evaluation.breakdown.initial_reconfig.as_millis(),
        outcome.evaluation.breakdown.dynamic_reconfig.as_millis(),
        outcome.evaluation.breakdown.computation_communication.as_millis()
    );
    println!(
        "final partition        : {} of {} tasks in hardware, {} configured",
        outcome.evaluation.n_hw_tasks,
        app.n_tasks(),
        outcome.mapping.total_configured_clbs(&app)
    );

    let rows: Vec<Vec<f64>> = trace
        .iter()
        .map(|t| {
            vec![
                t.iteration as f64,
                find(&t.observables, "makespan_ms"),
                t.best_cost / 1000.0,
                find(&t.observables, "n_contexts"),
                find(&t.observables, "initial_reconfig_ms"),
                find(&t.observables, "dynamic_reconfig_ms"),
                t.inverse_temperature,
            ]
        })
        .collect();
    write_csv(
        &out,
        &[
            "iteration",
            "exec_ms",
            "best_ms",
            "n_contexts",
            "initial_reconfig_ms",
            "dynamic_reconfig_ms",
            "inverse_temperature",
        ],
        &rows,
    );
}
