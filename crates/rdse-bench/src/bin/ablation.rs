//! Ablations of the design choices called out in DESIGN.md:
//!
//! * **A2 — schedules**: Lam adaptive cooling vs geometric cooling vs
//!   pure random walk, at an equal iteration budget, on the motion
//!   benchmark (the paper's claim is that the adaptive schedule needs
//!   no per-problem tuning yet converges at least as well);
//! * **move controller**: adaptive move-class weighting vs uniform
//!   class selection.
//!
//! (A1, the incremental Woodbury evaluation, is a Criterion bench:
//! `cargo bench -p rdse-bench --bench eval_incremental`.)
//!
//! Usage: `ablation [--runs N] [--iters N] [--clbs N] [--out F]`

use rdse_anneal::{anneal, GeometricSchedule, InfiniteTemperature, LamSchedule, RunOptions};
use rdse_bench::{arg_num, arg_value, mean, std_dev, write_csv};
use rdse_mapping::{random_initial, MappingProblem};
use rdse_workloads::{epicure_architecture, motion_detection_app};

use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let runs: u64 = arg_num(&args, "--runs", 20);
    let iters: u64 = arg_num(&args, "--iters", 5_000);
    let clbs: u32 = arg_num(&args, "--clbs", 2_000);
    let out = arg_value(&args, "--out").unwrap_or_else(|| "results/ablation.csv".into());

    let app = motion_detection_app();
    let arch = epicure_architecture(clbs);

    let run_one = |schedule_name: &str, seed: u64, adaptive_moves: bool| -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let initial = random_initial(&app, &arch, &mut rng);
        let mut problem =
            MappingProblem::new(&app, &arch, initial).expect("initial solution feasible");
        let opts = RunOptions {
            max_iterations: iters,
            warmup_iterations: iters / 5,
            seed: seed ^ 0xDEAD_BEEF,
            adaptive_moves,
            ..RunOptions::default()
        };
        let best = match schedule_name {
            "lam" => anneal(&mut problem, &mut LamSchedule::new(0.5), &opts).best_cost,
            "geometric" => {
                anneal(
                    &mut problem,
                    &mut GeometricSchedule::new(5_000.0, 0.999, 10),
                    &opts,
                )
                .best_cost
            }
            "random-walk" => anneal(&mut problem, &mut InfiniteTemperature::new(), &opts).best_cost,
            other => unreachable!("unknown schedule {other}"),
        };
        best / 1000.0
    };

    let mut table: Vec<(String, Vec<f64>)> = Vec::new();
    for (label, schedule, adaptive) in [
        ("lam + adaptive moves", "lam", true),
        ("lam + uniform moves", "lam", false),
        ("geometric + adaptive moves", "geometric", true),
        ("random walk", "random-walk", true),
    ] {
        let results: Vec<f64> = (0..runs)
            .map(|r| run_one(schedule, 31 + r, adaptive))
            .collect();
        table.push((label.to_string(), results));
    }

    println!(
        "configuration                best(ms)  mean(ms)  sd(ms)   ({} runs × {} iters)",
        runs, iters
    );
    for (label, results) in &table {
        println!(
            "{label:<28} {:>8.1}  {:>8.1}  {:>6.2}",
            results.iter().copied().fold(f64::INFINITY, f64::min),
            mean(results),
            std_dev(results)
        );
    }

    let n = table[0].1.len();
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let mut row = vec![i as f64];
            row.extend(table.iter().map(|(_, v)| v[i]));
            row
        })
        .collect();
    write_csv(
        &out,
        &[
            "run",
            "lam_adaptive",
            "lam_uniform",
            "geometric",
            "random_walk",
        ],
        &rows,
    );
}
