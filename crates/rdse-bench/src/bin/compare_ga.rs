//! Reproduction of the **§5 comparison against \[6\]** (Ben Chehida &
//! Auguin's genetic algorithm):
//!
//! * quality — the paper's best solutions reach 18.1 ms where the GA's
//!   published best is 28 ms;
//! * runtime — one annealing run takes < 10 s versus ≈ 4 minutes for
//!   the GA with population 300 ("even if it was reduced to 100, the
//!   method would still be an order of magnitude slower than ours").
//!
//! Absolute times shift on modern hardware; the *ratios* are the
//! reproduced quantity. Random search and hill climbing calibrate the
//! comparison.
//!
//! Usage: `compare_ga [--runs N] [--clbs N] [--seed N] [--out F]`

use rdse_baseline::{hill_climb, random_search, GaOptions, GeneticExplorer, HillClimbOptions};
use rdse_bench::{arg_num, arg_value, mean, std_dev, write_csv};
use rdse_mapping::{explore, explore_parallel, ExploreOptions, ParallelOptions};
use rdse_workloads::{epicure_architecture, motion_detection_app};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let runs: u64 = arg_num(&args, "--runs", 10);
    let clbs: u32 = arg_num(&args, "--clbs", 2_000);
    let seed0: u64 = arg_num(&args, "--seed", 1);
    let out = arg_value(&args, "--out").unwrap_or_else(|| "results/compare_ga.csv".into());

    let app = motion_detection_app();
    let arch = epicure_architecture(clbs);

    let mut sa_ms = Vec::new();
    let mut sa_secs = Vec::new();
    for r in 0..runs {
        let t0 = Instant::now();
        let outcome = explore(
            &app,
            &arch,
            &ExploreOptions {
                max_iterations: 5_000,
                warmup_iterations: 1_200,
                seed: seed0 + r,
                ..ExploreOptions::default()
            },
        )
        .expect("motion benchmark explores cleanly");
        sa_secs.push(t0.elapsed().as_secs_f64());
        sa_ms.push(outcome.evaluation.makespan.as_millis());
    }

    // The same total budget spread over an 8-chain portfolio with
    // periodic best-solution exchange — the scale-out story of the new
    // engine at iteration-for-iteration parity with single-chain SA.
    let chains: usize = arg_num(&args, "--chains", 8);
    let mut psa_ms = Vec::new();
    let mut psa_secs = Vec::new();
    for r in 0..runs {
        let t0 = Instant::now();
        let outcome = explore_parallel(
            &app,
            &arch,
            &ParallelOptions {
                base: ExploreOptions {
                    max_iterations: 5_000,
                    warmup_iterations: 1_200,
                    seed: seed0 + r,
                    ..ExploreOptions::default()
                },
                chains,
                threads: 0,
                exchange_every: 250,
                warm_start: None,
            },
        )
        .expect("motion benchmark explores cleanly");
        psa_secs.push(t0.elapsed().as_secs_f64());
        psa_ms.push(outcome.evaluation.makespan.as_millis());
    }

    let mut ga_ms = Vec::new();
    let mut ga_secs = Vec::new();
    for r in 0..runs {
        let t0 = Instant::now();
        let outcome = GeneticExplorer::new(
            &app,
            &arch,
            GaOptions {
                population: 300,
                seed: seed0 + r,
                ..GaOptions::default()
            },
        )
        .run()
        .expect("GA runs cleanly");
        ga_secs.push(t0.elapsed().as_secs_f64());
        ga_ms.push(outcome.evaluation.makespan.as_millis());
    }

    let mut rs_ms = Vec::new();
    for r in 0..runs {
        let (_, eval) = random_search(&app, &arch, 5_000, seed0 + r).expect("random search runs");
        rs_ms.push(eval.makespan.as_millis());
    }

    let mut hc_ms = Vec::new();
    for r in 0..runs {
        let (_, eval) = hill_climb(
            &app,
            &arch,
            &HillClimbOptions {
                moves_per_restart: 5_000,
                restarts: 1,
                seed: seed0 + r,
            },
        )
        .expect("hill climbing runs");
        hc_ms.push(eval.makespan.as_millis());
    }

    let best = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    println!("method               best(ms)  mean(ms)  sd(ms)   mean time");
    println!(
        "adaptive SA (ours)   {:>8.1}  {:>8.1}  {:>6.2}  {:>9.3} s",
        best(&sa_ms),
        mean(&sa_ms),
        std_dev(&sa_ms),
        mean(&sa_secs)
    );
    println!(
        "portfolio SA x{chains:<4}   {:>8.1}  {:>8.1}  {:>6.2}  {:>9.3} s",
        best(&psa_ms),
        mean(&psa_ms),
        std_dev(&psa_ms),
        mean(&psa_secs)
    );
    println!(
        "GA pop=300 [6]       {:>8.1}  {:>8.1}  {:>6.2}  {:>9.3} s",
        best(&ga_ms),
        mean(&ga_ms),
        std_dev(&ga_ms),
        mean(&ga_secs)
    );
    println!(
        "random search        {:>8.1}  {:>8.1}  {:>6.2}          -",
        best(&rs_ms),
        mean(&rs_ms),
        std_dev(&rs_ms)
    );
    println!(
        "hill climbing        {:>8.1}  {:>8.1}  {:>6.2}          -",
        best(&hc_ms),
        mean(&hc_ms),
        std_dev(&hc_ms)
    );
    println!(
        "\npaper: SA best 18.1 ms in < 10 s; GA best 28 ms in ~4 min (ratio ~{:.0}x)",
        240.0 / 10.0
    );
    println!(
        "here : SA best {:.1} ms; GA best {:.1} ms; SA/GA quality {:.2}, GA/SA runtime {:.1}x",
        best(&sa_ms),
        best(&ga_ms),
        best(&sa_ms) / best(&ga_ms),
        mean(&ga_secs) / mean(&sa_secs).max(1e-9)
    );

    let rows: Vec<Vec<f64>> = (0..runs as usize)
        .map(|i| {
            vec![
                i as f64,
                sa_ms[i],
                psa_ms[i],
                ga_ms[i],
                rs_ms[i],
                hc_ms[i],
                sa_secs[i],
                psa_secs[i],
                ga_secs[i],
            ]
        })
        .collect();
    write_csv(
        &out,
        &[
            "run",
            "sa_ms",
            "portfolio_sa_ms",
            "ga_ms",
            "random_ms",
            "hillclimb_ms",
            "sa_secs",
            "portfolio_sa_secs",
            "ga_secs",
        ],
        &rows,
    );
}
