//! Reproduction of the **§5 comparison against \[6\]** (Ben Chehida &
//! Auguin's genetic algorithm):
//!
//! * quality — the paper's best solutions reach 18.1 ms where the GA's
//!   published best is 28 ms;
//! * runtime — one annealing run takes < 10 s versus ≈ 4 minutes for
//!   the GA with population 300 ("even if it was reduced to 100, the
//!   method would still be an order of magnitude slower than ours").
//!
//! Absolute times shift on modern hardware; the *ratios* are the
//! reproduced quantity. Random search and hill climbing calibrate the
//! comparison.
//!
//! Usage: `compare_ga [--runs N] [--clbs N] [--seed N] [--out F]`
//!
//! `--fronts` switches to the multi-objective view instead: per seed
//! it runs the scalar GA and the NSGA-II GA ([--pop N] [--gens N])
//! and reports front size, exact hypervolume against a shared
//! reference point, and whether the front weakly dominates the scalar
//! specialist's point.

use rdse_baseline::{hill_climb, random_search, GaOptions, GeneticExplorer, HillClimbOptions};
use rdse_bench::{arg_num, arg_value, mean, std_dev, write_csv};
use rdse_mapping::{
    explore, explore_parallel, hypervolume, Cost, CostVector, Dominance, ExploreOptions,
    ParallelOptions,
};
use rdse_model::{Architecture, TaskGraph};
use rdse_workloads::{epicure_architecture, motion_detection_app};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let runs: u64 = arg_num(&args, "--runs", 10);
    let clbs: u32 = arg_num(&args, "--clbs", 2_000);
    let seed0: u64 = arg_num(&args, "--seed", 1);
    let out = arg_value(&args, "--out").unwrap_or_else(|| "results/compare_ga.csv".into());

    let app = motion_detection_app();
    let arch = epicure_architecture(clbs);

    if args.iter().any(|a| a == "--fronts") {
        let population: usize = arg_num(&args, "--pop", 300);
        let generations: usize = arg_num(&args, "--gens", 200);
        compare_fronts(&app, &arch, runs, seed0, population, generations, &out);
        return;
    }

    let mut sa_ms = Vec::new();
    let mut sa_secs = Vec::new();
    for r in 0..runs {
        let t0 = Instant::now();
        let outcome = explore(
            &app,
            &arch,
            &ExploreOptions {
                max_iterations: 5_000,
                warmup_iterations: 1_200,
                seed: seed0 + r,
                ..ExploreOptions::default()
            },
        )
        .expect("motion benchmark explores cleanly");
        sa_secs.push(t0.elapsed().as_secs_f64());
        sa_ms.push(outcome.evaluation.makespan.as_millis());
    }

    // The same total budget spread over an 8-chain portfolio with
    // periodic best-solution exchange — the scale-out story of the new
    // engine at iteration-for-iteration parity with single-chain SA.
    let chains: usize = arg_num(&args, "--chains", 8);
    let mut psa_ms = Vec::new();
    let mut psa_secs = Vec::new();
    for r in 0..runs {
        let t0 = Instant::now();
        let outcome = explore_parallel(
            &app,
            &arch,
            &ParallelOptions {
                base: ExploreOptions {
                    max_iterations: 5_000,
                    warmup_iterations: 1_200,
                    seed: seed0 + r,
                    ..ExploreOptions::default()
                },
                chains,
                threads: 0,
                exchange_every: 250,
                warm_start: None,
                front_exchange: false,
            },
        )
        .expect("motion benchmark explores cleanly");
        psa_secs.push(t0.elapsed().as_secs_f64());
        psa_ms.push(outcome.evaluation.makespan.as_millis());
    }

    let mut ga_ms = Vec::new();
    let mut ga_secs = Vec::new();
    for r in 0..runs {
        let t0 = Instant::now();
        let outcome = GeneticExplorer::new(
            &app,
            &arch,
            GaOptions {
                population: 300,
                seed: seed0 + r,
                ..GaOptions::default()
            },
        )
        .run()
        .expect("GA runs cleanly");
        ga_secs.push(t0.elapsed().as_secs_f64());
        ga_ms.push(outcome.evaluation.makespan.as_millis());
    }

    let mut rs_ms = Vec::new();
    for r in 0..runs {
        let (_, eval) = random_search(&app, &arch, 5_000, seed0 + r).expect("random search runs");
        rs_ms.push(eval.makespan.as_millis());
    }

    let mut hc_ms = Vec::new();
    for r in 0..runs {
        let (_, eval) = hill_climb(
            &app,
            &arch,
            &HillClimbOptions {
                moves_per_restart: 5_000,
                restarts: 1,
                seed: seed0 + r,
            },
        )
        .expect("hill climbing runs");
        hc_ms.push(eval.makespan.as_millis());
    }

    let best = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    println!("method               best(ms)  mean(ms)  sd(ms)   mean time");
    println!(
        "adaptive SA (ours)   {:>8.1}  {:>8.1}  {:>6.2}  {:>9.3} s",
        best(&sa_ms),
        mean(&sa_ms),
        std_dev(&sa_ms),
        mean(&sa_secs)
    );
    println!(
        "portfolio SA x{chains:<4}   {:>8.1}  {:>8.1}  {:>6.2}  {:>9.3} s",
        best(&psa_ms),
        mean(&psa_ms),
        std_dev(&psa_ms),
        mean(&psa_secs)
    );
    println!(
        "GA pop=300 [6]       {:>8.1}  {:>8.1}  {:>6.2}  {:>9.3} s",
        best(&ga_ms),
        mean(&ga_ms),
        std_dev(&ga_ms),
        mean(&ga_secs)
    );
    println!(
        "random search        {:>8.1}  {:>8.1}  {:>6.2}          -",
        best(&rs_ms),
        mean(&rs_ms),
        std_dev(&rs_ms)
    );
    println!(
        "hill climbing        {:>8.1}  {:>8.1}  {:>6.2}          -",
        best(&hc_ms),
        mean(&hc_ms),
        std_dev(&hc_ms)
    );
    println!(
        "\npaper: SA best 18.1 ms in < 10 s; GA best 28 ms in ~4 min (ratio ~{:.0}x)",
        240.0 / 10.0
    );
    println!(
        "here : SA best {:.1} ms; GA best {:.1} ms; SA/GA quality {:.2}, GA/SA runtime {:.1}x",
        best(&sa_ms),
        best(&ga_ms),
        best(&sa_ms) / best(&ga_ms),
        mean(&ga_secs) / mean(&sa_secs).max(1e-9)
    );

    let rows: Vec<Vec<f64>> = (0..runs as usize)
        .map(|i| {
            vec![
                i as f64,
                sa_ms[i],
                psa_ms[i],
                ga_ms[i],
                rs_ms[i],
                hc_ms[i],
                sa_secs[i],
                psa_secs[i],
                ga_secs[i],
            ]
        })
        .collect();
    write_csv(
        &out,
        &[
            "run",
            "sa_ms",
            "portfolio_sa_ms",
            "ga_ms",
            "random_ms",
            "hillclimb_ms",
            "sa_secs",
            "portfolio_sa_secs",
            "ga_secs",
        ],
        &rows,
    );
}

/// The multi-objective extension of the §5 comparison: the scalar GA
/// optimizes makespan alone and yields one point; the NSGA-II GA
/// yields a front over (makespan, CLB area, reconfiguration overhead,
/// contexts). Both hypervolumes are measured against the same
/// reference point (per-axis max over front ∪ scalar point, + 1), so
/// the ratio reads "how much objective-space volume the front covers
/// beyond the single specialist".
#[allow(clippy::too_many_arguments)]
fn compare_fronts(
    app: &TaskGraph,
    arch: &Architecture,
    runs: u64,
    seed0: u64,
    population: usize,
    generations: usize,
    out: &str,
) {
    println!(
        "run  scalar(ms)  nsga2 best(ms)  front  covers  hv(front)      hv(point)      hv ratio"
    );
    let mut rows = Vec::new();
    for r in 0..runs {
        let opts = |nsga2| GaOptions {
            population,
            generations,
            nsga2,
            seed: seed0 + r,
            ..GaOptions::default()
        };
        let scalar = GeneticExplorer::new(app, arch, opts(false))
            .run()
            .expect("scalar GA runs cleanly");
        let nsga2 = GeneticExplorer::new(app, arch, opts(true))
            .run()
            .expect("NSGA-II GA runs cleanly");

        let point = CostVector::from_summary(&scalar.evaluation.summary());
        let members = nsga2.front.members();

        // Shared reference point: per-axis maximum over everything
        // being measured, pushed out by 1 so boundary points still
        // contribute volume. Deterministic — no wall-clock input.
        let reference: Vec<f64> = (0..point.n_objectives())
            .map(|m| {
                members
                    .iter()
                    .map(|c| c.objective(m))
                    .fold(point.objective(m), f64::max)
                    + 1.0
            })
            .collect();

        let hv_front = hypervolume(members, &reference);
        let hv_point = hypervolume(&[point], &reference);
        let covers = members.iter().any(|m| m.dominates(&point) || *m == point);
        let ratio = hv_front / hv_point.max(f64::MIN_POSITIVE);

        println!(
            "{:>3}  {:>10.1}  {:>14.1}  {:>5}  {:>6}  {:>13.5e}  {:>13.5e}  {:>8.3}",
            r,
            point.makespan / 1_000.0,
            nsga2.evaluation.makespan.as_millis(),
            members.len(),
            if covers { "yes" } else { "NO" },
            hv_front,
            hv_point,
            ratio,
        );
        rows.push(vec![
            r as f64,
            point.makespan / 1_000.0,
            nsga2.evaluation.makespan.as_millis(),
            members.len() as f64,
            if covers { 1.0 } else { 0.0 },
            hv_front,
            hv_point,
            ratio,
        ]);
    }
    write_csv(
        out,
        &[
            "run",
            "scalar_ms",
            "nsga2_ms",
            "front_size",
            "covers_scalar",
            "hv_front",
            "hv_point",
            "hv_ratio",
        ],
        &rows,
    );
}
