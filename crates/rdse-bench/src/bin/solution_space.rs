//! Reproduction of the **§5 solution-space size analysis** — the
//! counting argument showing that even the "simple" 28-task example has
//! a huge search space. Every number quoted in the paper is recomputed
//! from first principles (linear-extension DP + closed forms) and
//! checked against the quoted value.

use rdse_graph::{binomial, count_linear_extensions, parallel_chain_orders, Digraph, NodeId};
use rdse_workloads::motion::{first_twenty, motion_detection_app};

fn induced(app: &rdse_model::TaskGraph, keep: &[rdse_model::TaskId]) -> Digraph {
    let mut g = Digraph::new(keep.len());
    let pos = |t: rdse_model::TaskId| keep.iter().position(|&k| k == t);
    for e in app.edges() {
        if let (Some(a), Some(b)) = (pos(e.from), pos(e.to)) {
            g.add_edge(NodeId(a as u32), NodeId(b as u32), 0.0)
                .expect("induced edges are valid");
        }
    }
    g
}

fn row(label: &str, computed: u128, paper: u128) {
    let status = if computed == paper {
        "exact"
    } else {
        "MISMATCH"
    };
    println!("{label:<58} {computed:>16}  {paper:>16}  {status}");
}

fn main() {
    let app = motion_detection_app();
    println!(
        "{:<58} {:>16}  {:>16}  match",
        "quantity", "computed", "paper"
    );
    println!("{}", "-".repeat(100));

    // Chain case: a 28-node chain with k changes of context.
    row("28-chain, 2 context changes: C(28,2)", binomial(28, 2), 378);
    row(
        "28-chain, 6 context changes: C(28,6)",
        binomial(28, 6),
        376_740,
    );

    // Total orders of the first 20 nodes (7-chain ∥ 6-chain after a
    // 7-chain prefix), by DP over order ideals and by closed form.
    let first20 =
        count_linear_extensions(&induced(&app, &first_twenty()), None).expect("small lattice");
    row("total orders, first 20 nodes (DP)", first20, 1716);
    row(
        "total orders, first 20 nodes (C(13,6))",
        parallel_chain_orders(&[7, 6]),
        1716,
    );

    // Total orders of the full graph.
    let all: Vec<rdse_model::TaskId> = app.task_ids().collect();
    let full = count_linear_extensions(&induced(&app, &all), None).expect("small lattice");
    row("total orders, 28 nodes (DP)", full, 348_840);
    row(
        "total orders, 28 nodes (3·C(21,7))",
        3 * parallel_chain_orders(&[7, 14]),
        348_840,
    );

    // Combinations including context changes.
    row(
        "orders × C(28,2) (2 context changes)",
        full * binomial(28, 2),
        131_861_520,
    );
    row(
        "orders × C(28,4) (4 context changes)",
        full * binomial(28, 4),
        7_142_499_000,
    );

    println!();
    println!(
        "(All of this assumes every task on the RC; the spatial partition\n\
         multiplies the space by up to 2^28 ≈ {:.1e} more.)",
        2f64.powi(28)
    );
}
