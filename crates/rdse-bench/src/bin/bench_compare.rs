//! Compares a bench NDJSON run against the committed baseline and
//! gates CI on throughput regressions.
//!
//! Usage: `bench_compare <baseline.json> <current.json> [--max-regression PCT]`
//!
//! Both files are newline-delimited JSON records as written by the
//! bench harness (`RDSE_BENCH_JSON`). Records are matched by `name`;
//! for every pair carrying a `steps_per_sec` field the relative change
//! is printed, and the process exits non-zero when any drops by more
//! than the allowed regression (default 25%). A passing run ends with
//! a one-line summary (rows compared / improved / regressed) so the
//! tail of a green CI log still says what was checked. Rows present in only one
//! of the files are listed by name on both sides — a bench that
//! silently stopped running (or a baseline row nothing produces
//! anymore) is drift worth seeing, even though only regressions fail
//! the gate.
//!
//! CI runners and developer machines differ in absolute speed, so the
//! generous default only catches step-cost blowups, not noise; the
//! baseline (`BENCH_main.json` at the repo root) is refreshed
//! deliberately whenever the engine's cost per step changes on
//! purpose.

use serde_json::Value;

fn as_f64(v: &Value) -> Option<f64> {
    match *v {
        Value::F64(f) => Some(f),
        Value::I64(n) => Some(n as f64),
        Value::U64(n) => Some(n as f64),
        _ => None,
    }
}

fn steps_per_sec(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read bench file '{path}': {e}"));
    let mut out = Vec::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let Ok(v) = serde_json::from_str::<Value>(line) else {
            eprintln!("warning: skipping malformed bench line in {path}: {line}");
            continue;
        };
        let name = match v.get("name") {
            Some(Value::Str(s)) => Some(s.clone()),
            _ => None,
        };
        let rate = v.get("steps_per_sec").and_then(as_f64);
        let (Some(name), Some(rate)) = (name, rate) else {
            continue;
        };
        // Keep the newest record per name (reruns append).
        if let Some(slot) = out
            .iter_mut()
            .find(|(n, _): &&mut (String, f64)| *n == name)
        {
            slot.1 = rate;
        } else {
            out.push((name, rate));
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mut baseline_path, mut current_path) = (None, None);
    let mut max_regression = 25.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--max-regression" => {
                max_regression = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .expect("--max-regression takes a percentage");
                i += 2;
            }
            path if baseline_path.is_none() => {
                baseline_path = Some(path.to_owned());
                i += 1;
            }
            path if current_path.is_none() => {
                current_path = Some(path.to_owned());
                i += 1;
            }
            other => panic!("unexpected argument '{other}'"),
        }
    }
    let (Some(baseline_path), Some(current_path)) = (baseline_path, current_path) else {
        eprintln!("usage: bench_compare <baseline.json> <current.json> [--max-regression PCT]");
        std::process::exit(2);
    };

    let baseline = steps_per_sec(&baseline_path);
    let current = steps_per_sec(&current_path);

    println!("bench comparison vs {baseline_path} (fail below -{max_regression:.0}%):");
    let mut compared = 0;
    let mut baseline_only: Vec<&String> = Vec::new();
    let mut failures: Vec<(&String, f64, f64, f64)> = Vec::new();
    for (name, base_rate) in &baseline {
        let Some((_, cur_rate)) = current.iter().find(|(n, _)| n == name) else {
            baseline_only.push(name);
            println!("  {name:<34} missing from {current_path} (skipped)");
            continue;
        };
        compared += 1;
        let change = (cur_rate - base_rate) / base_rate * 100.0;
        let verdict = if change < -max_regression {
            failures.push((name, *base_rate, *cur_rate, change));
            "REGRESSION"
        } else {
            "ok"
        };
        println!(
            "  {name:<34} {base_rate:>12.0} -> {cur_rate:>12.0} steps/s ({change:>+6.1}%)  {verdict}"
        );
    }
    // One-sided rows, both directions, as a summary block: names in
    // the baseline nothing produced, and names the current run emitted
    // that the baseline has never seen (a new bench whose row should
    // be committed).
    let current_only: Vec<&String> = current
        .iter()
        .map(|(n, _)| n)
        .filter(|n| !baseline.iter().any(|(b, _)| b == *n))
        .collect();
    if !baseline_only.is_empty() {
        println!(
            "  {} baseline row(s) not produced by {current_path}: {}",
            baseline_only.len(),
            baseline_only
                .iter()
                .map(|n| n.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    if !current_only.is_empty() {
        println!(
            "  {} new row(s) absent from {baseline_path}: {}",
            current_only.len(),
            current_only
                .iter()
                .map(|n| n.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    if compared == 0 {
        eprintln!("error: no comparable steps_per_sec records between the two files");
        std::process::exit(2);
    }
    if !failures.is_empty() {
        // Every failing row again, in one block, so the cause is
        // readable from the tail of the CI log without scrolling
        // through the passing rows.
        eprintln!(
            "error: {} of {compared} benchmark(s) regressed more than {max_regression:.0}%:",
            failures.len()
        );
        for (name, base_rate, cur_rate, change) in &failures {
            eprintln!(
                "  {name:<34} {base_rate:>12.0} -> {cur_rate:>12.0} steps/s ({change:>+6.1}%)"
            );
        }
        eprintln!("refresh BENCH_main.json deliberately if the step-cost change is intentional");
        std::process::exit(1);
    }
    let improved = baseline
        .iter()
        .filter(|(name, base_rate)| {
            current
                .iter()
                .any(|(n, cur_rate)| n == name && cur_rate > base_rate)
        })
        .count();
    println!(
        "bench_compare: {compared} row(s) compared, {improved} improved, 0 regressed \
         beyond -{max_regression:.0}%"
    );
}
