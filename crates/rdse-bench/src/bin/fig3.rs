//! Reproduction of **Fig. 3**: average execution time, initial and
//! dynamic reconfiguration times, and number of contexts versus FPGA
//! size (100 → 10 000 CLBs), each point averaged over many runs.
//!
//! Paper reference shape: execution time is high for tiny devices,
//! drops quickly once a context can hold more than one task, reaches a
//! minimum around 800 CLBs, grows slowly and plateaus around 5 000
//! CLBs (from which size on a single context suffices); small devices
//! (400–1 500 CLBs) use up to ~10 contexts, the count dropping steadily
//! with size; total reconfiguration time stays roughly constant because
//! context count and context size compensate.
//!
//! The many runs per size are the independent chains of one
//! [`explore_parallel`] portfolio (exchange disabled, so the chains are
//! statistically independent samples), which also parallelizes the
//! sweep across cores deterministically.
//!
//! Usage: `fig3 [--runs N] [--iters N] [--seed N] [--threads T] [--out F]`

use rdse_bench::{arg_num, arg_value, ascii_plot, mean, write_csv};
use rdse_mapping::{explore_parallel, ExploreOptions, ParallelOptions};
use rdse_workloads::{epicure_architecture, motion_detection_app};

/// Device sizes swept (CLBs), as in the paper's 100..10000 range.
const SIZES: [u32; 16] = [
    100, 200, 300, 400, 600, 800, 1000, 1250, 1500, 2000, 3000, 4000, 5000, 6000, 8000, 10000,
];

/// One averaged sweep point: (size, exec, initial reconfig, dynamic
/// reconfig, contexts).
type SweepRow = (u32, f64, f64, f64, f64);

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let runs: u64 = arg_num(&args, "--runs", 100);
    let iters: u64 = arg_num(&args, "--iters", 5_000);
    let seed0: u64 = arg_num(&args, "--seed", 1);
    let lambda: f64 = arg_num(&args, "--lambda", 0.5);
    let threads: usize = arg_num(&args, "--threads", 0);
    let out = arg_value(&args, "--out").unwrap_or_else(|| "results/fig3.csv".into());

    let app = motion_detection_app();
    let mut rows: Vec<SweepRow> = Vec::with_capacity(SIZES.len());
    for size in SIZES {
        let arch = epicure_architecture(size);
        // `runs` independent annealing chains: the total budget is
        // `iters` per chain, exchange disabled so each chain is one
        // Fig. 3 sample.
        let portfolio = explore_parallel(
            &app,
            &arch,
            &ParallelOptions {
                base: ExploreOptions {
                    max_iterations: iters * runs,
                    warmup_iterations: (iters / 5) * runs,
                    seed: seed0 + size as u64,
                    lambda,
                    ..ExploreOptions::default()
                },
                chains: runs as usize,
                threads,
                exchange_every: 0,
                warm_start: None,
                front_exchange: false,
            },
        )
        .expect("motion benchmark explores cleanly");
        let exec: Vec<f64> = portfolio
            .chains
            .iter()
            .map(|c| c.evaluation.makespan.as_millis())
            .collect();
        let init_r: Vec<f64> = portfolio
            .chains
            .iter()
            .map(|c| c.evaluation.breakdown.initial_reconfig.as_millis())
            .collect();
        let dyn_r: Vec<f64> = portfolio
            .chains
            .iter()
            .map(|c| c.evaluation.breakdown.dynamic_reconfig.as_millis())
            .collect();
        let ctxs: Vec<f64> = portfolio
            .chains
            .iter()
            .map(|c| c.evaluation.n_contexts as f64)
            .collect();
        rows.push((size, mean(&exec), mean(&init_r), mean(&dyn_r), mean(&ctxs)));
        eprintln!(
            "size {size:>5}: exec {:.1} ms, reconfig {:.1}+{:.1} ms, contexts {:.1} ({:?})",
            mean(&exec),
            mean(&init_r),
            mean(&dyn_r),
            mean(&ctxs),
            portfolio.elapsed,
        );
    }

    let exec_pts: Vec<(f64, f64)> = rows.iter().map(|r| (r.0 as f64, r.1)).collect();
    let init_pts: Vec<(f64, f64)> = rows.iter().map(|r| (r.0 as f64, r.2)).collect();
    let dyn_pts: Vec<(f64, f64)> = rows.iter().map(|r| (r.0 as f64, r.3)).collect();
    let ctx_pts: Vec<(f64, f64)> = rows.iter().map(|r| (r.0 as f64, r.4)).collect();

    println!(
        "{}",
        ascii_plot(
            "Fig. 3a — times (ms) vs FPGA size (CLBs)",
            &[
                ("execution time", &exec_pts),
                ("initial reconfiguration", &init_pts),
                ("dynamic reconfiguration", &dyn_pts),
            ],
            78,
            20
        )
    );
    println!(
        "{}",
        ascii_plot(
            "Fig. 3b — number of contexts vs FPGA size",
            &[("contexts", &ctx_pts)],
            78,
            10
        )
    );

    println!("size_clbs  exec_ms  init_reconfig_ms  dyn_reconfig_ms  contexts");
    for r in &rows {
        println!(
            "{:>8}  {:>7.1}  {:>16.1}  {:>15.1}  {:>8.1}",
            r.0, r.1, r.2, r.3, r.4
        );
    }
    let best = rows
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite means"))
        .expect("at least one size");
    println!(
        "\nminimum average execution time: {:.1} ms at {} CLBs (paper: minimum near 800 CLBs)",
        best.1, best.0
    );

    let csv_rows: Vec<Vec<f64>> = rows
        .iter()
        .map(|r| vec![r.0 as f64, r.1, r.2, r.3, r.4])
        .collect();
    write_csv(
        &out,
        &[
            "size_clbs",
            "exec_ms",
            "initial_reconfig_ms",
            "dynamic_reconfig_ms",
            "n_contexts",
        ],
        &csv_rows,
    );
}
