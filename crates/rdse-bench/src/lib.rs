//! Shared helpers for the experiment harness: tiny CSV writer, ASCII
//! plotting, and summary statistics. Each figure/table of the paper has
//! a dedicated binary in `src/bin/` (see DESIGN.md's experiment index).

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Writes rows as CSV (first row = header) and returns the path note.
///
/// # Panics
///
/// Panics if the file cannot be written — experiment binaries want loud
/// failures, not silent data loss.
pub fn write_csv(path: impl AsRef<Path>, header: &[&str], rows: &[Vec<f64>]) {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir).expect("create output directory");
    }
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    fs::write(path, out).expect("write csv");
    eprintln!("wrote {}", path.display());
}

/// Renders a rough ASCII scatter/line plot of `series` (label, points).
///
/// All series share the axes; x and y ranges are computed over the
/// union. Each series is drawn with its own glyph.
pub fn ascii_plot(
    title: &str,
    series: &[(&str, &[(f64, f64)])],
    width: usize,
    height: usize,
) -> String {
    const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, pts) in series {
        for &(x, y) in *pts {
            xmin = xmin.min(x);
            xmax = xmax.max(x);
            ymin = ymin.min(y);
            ymax = ymax.max(y);
        }
    }
    if !xmin.is_finite() || xmax <= xmin {
        xmax = xmin + 1.0;
    }
    if !ymin.is_finite() || ymax <= ymin {
        ymax = ymin + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in *pts {
            let col = (((x - xmin) / (xmax - xmin)) * (width as f64 - 1.0)).round() as usize;
            let row = (((y - ymin) / (ymax - ymin)) * (height as f64 - 1.0)).round() as usize;
            let row = height - 1 - row.min(height - 1);
            grid[row][col.min(width - 1)] = glyph;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "y: [{ymin:.2} .. {ymax:.2}]");
    for row in grid {
        let _ = writeln!(out, "|{}|", row.into_iter().collect::<String>());
    }
    let _ = writeln!(out, "x: [{xmin:.2} .. {xmax:.2}]");
    for (si, (label, _)) in series.iter().enumerate() {
        let _ = writeln!(out, "  {} = {label}", GLYPHS[si % GLYPHS.len()]);
    }
    out
}

/// Mean of a slice (0.0 when empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Sample standard deviation (0.0 with fewer than two samples).
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64).sqrt()
}

/// Parses `--flag value` style options from `std::env::args`.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parses a numeric `--flag value`, falling back to `default`.
pub fn arg_num<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    arg_value(args, flag)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_dev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.138).abs() < 0.01);
    }

    #[test]
    fn plot_contains_glyphs_and_ranges() {
        let pts_a = [(0.0, 0.0), (1.0, 1.0)];
        let pts_b = [(0.5, 0.5)];
        let p = ascii_plot("demo", &[("A", &pts_a), ("B", &pts_b)], 20, 10);
        assert!(p.contains('*') && p.contains('o'));
        assert!(p.contains("x: [0.00 .. 1.00]"));
        assert!(p.contains("demo"));
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["prog", "--runs", "25", "--out", "x.csv"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_num(&args, "--runs", 100u32), 25);
        assert_eq!(arg_num(&args, "--missing", 7u32), 7);
        assert_eq!(arg_value(&args, "--out").unwrap(), "x.csv");
    }
}
