//! The paper's benchmark end to end: the 28-task motion-detection
//! application on the ARM922 + Virtex-E platform, explored with the
//! Fig. 2 protocol (1 200 warm-up iterations, 5 000 total), then
//! cross-validated with the discrete-event simulator including bus
//! contention.
//!
//! Run with: `cargo run --release --example motion_detection`

use rdse::mapping::{explore, ExploreOptions, GanttChart};
use rdse::sim::{simulate, SimConfig};
use rdse::workloads::{epicure_architecture, motion_detection_app, MOTION_DEADLINE};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = motion_detection_app();
    let arch = epicure_architecture(2000);

    println!(
        "application : {} ({} tasks, {} in software on the ARM922)",
        app.name(),
        app.n_tasks(),
        app.total_sw_time()
    );
    println!("constraint  : {MOTION_DEADLINE} per image\n");

    let outcome = explore(
        &app,
        &arch,
        &ExploreOptions {
            max_iterations: 5_000,
            warmup_iterations: 1_200,
            seed: 1,
            ..ExploreOptions::default()
        },
    )?;

    let e = &outcome.evaluation;
    println!(
        "optimized   : {} with {} contexts ({} hardware tasks), constraint {}",
        e.makespan,
        e.n_contexts,
        e.n_hw_tasks,
        if e.makespan <= MOTION_DEADLINE {
            "MET"
        } else {
            "MISSED"
        }
    );
    println!(
        "breakdown   : reconfig {} + {}, computation/communication {}",
        e.breakdown.initial_reconfig,
        e.breakdown.dynamic_reconfig,
        e.breakdown.computation_communication
    );
    println!("wall time   : {:?} (paper: < 10 s)\n", outcome.run.elapsed);

    // Validate the static estimate dynamically, with an exclusive bus.
    let free = simulate(&app, &arch, &outcome.mapping, &SimConfig::contention_free())?;
    let contended = simulate(&app, &arch, &outcome.mapping, &SimConfig::with_contention())?;
    println!(
        "DES (no contention) : {} — must equal the analytic value",
        free.makespan
    );
    println!(
        "DES (exclusive bus) : {} — {} transfers, bus busy {}",
        contended.makespan, contended.n_transfers, contended.bus_busy
    );

    println!("\nSchedule (Fig. 1(c) style):");
    let chart = GanttChart::extract(&app, &arch, &outcome.mapping, &outcome.evaluation);
    println!("{}", chart.render_ascii(&app, &arch, 100));
    Ok(())
}
