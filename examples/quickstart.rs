//! Quickstart: build a small application and architecture in code,
//! explore, and print the resulting schedule.
//!
//! Run with: `cargo run --release --example quickstart`

use rdse::mapping::{explore, ExploreOptions, GanttChart};
use rdse::model::units::{Bytes, Clbs, Micros};
use rdse::model::{Architecture, HwImpl, TaskGraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A five-stage video pipeline. Each stage has a software estimate
    // and a couple of synthesized hardware implementations
    // (area in CLBs × execution time).
    let mut app = TaskGraph::new("pipeline");
    let stages = [
        ("capture", 400.0, vec![]),
        (
            "denoise",
            2_500.0,
            vec![
                HwImpl::new(Clbs::new(120), Micros::new(180.0)),
                HwImpl::new(Clbs::new(220), Micros::new(110.0)),
            ],
        ),
        (
            "edge-detect",
            3_000.0,
            vec![
                HwImpl::new(Clbs::new(150), Micros::new(200.0)),
                HwImpl::new(Clbs::new(260), Micros::new(120.0)),
            ],
        ),
        (
            "segment",
            2_200.0,
            vec![HwImpl::new(Clbs::new(180), Micros::new(250.0))],
        ),
        ("classify", 600.0, vec![]),
    ];
    let mut prev = None;
    for (name, sw_us, impls) in stages {
        let t = app.add_task(name, name, Micros::new(sw_us), impls)?;
        if let Some(p) = prev {
            app.add_data_edge(p, t, Bytes::new(16_384))?;
        }
        prev = Some(t);
    }
    app.validate()?;

    // A CPU plus a small partially reconfigurable FPGA.
    let arch = Architecture::builder("demo-soc")
        .processor("cpu", 1.0)
        .drlc("fpga", Clbs::new(300), Micros::new(5.0), 2.0)
        .bus_rate(64.0)
        .build()?;

    println!(
        "all-software execution: {} (sum of software times)",
        app.total_sw_time()
    );

    let outcome = explore(
        &app,
        &arch,
        &ExploreOptions {
            max_iterations: 4_000,
            warmup_iterations: 800,
            seed: 42,
            ..ExploreOptions::default()
        },
    )?;

    println!(
        "optimized makespan    : {} ({} contexts, {} hardware tasks)",
        outcome.evaluation.makespan, outcome.evaluation.n_contexts, outcome.evaluation.n_hw_tasks
    );
    println!(
        "reconfiguration       : initial {} + dynamic {}",
        outcome.evaluation.breakdown.initial_reconfig,
        outcome.evaluation.breakdown.dynamic_reconfig
    );
    println!("search wall time      : {:?}\n", outcome.run.elapsed);

    let chart = GanttChart::extract(&app, &arch, &outcome.mapping, &outcome.evaluation);
    println!("{}", chart.render_ascii(&app, &arch, 90));
    Ok(())
}
