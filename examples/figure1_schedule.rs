//! Fig. 1 of the paper, reconstructed: the ten-task example graph, a
//! spatio-temporal partitioning with A, C, B on the processor and two
//! execution contexts on the DRLC, and its schedule.
//!
//! Run with: `cargo run --release --example figure1_schedule`

use rdse::mapping::{evaluate, GanttChart, Mapping};
use rdse::model::units::{Clbs, Micros};
use rdse::model::Architecture;
use rdse::workloads::figure1::{figure1_app, task_by_name};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = figure1_app();
    let arch = Architecture::builder("figure1")
        .processor("proc", 1.0)
        .drlc("drc", Clbs::new(400), Micros::new(10.0), 1.0)
        .bus_rate(32.0)
        .build()?;

    // The partitioning of Fig. 1(b): A, C, B on the processor in that
    // total order; {D, E} in execution context 1; {F, G, H} in context
    // 2; I and J on the processor after B.
    let (a, b, c) = (task_by_name("A"), task_by_name("B"), task_by_name("C"));
    let (i, j) = (task_by_name("I"), task_by_name("J"));
    let mut mapping = Mapping::all_software(
        &app,
        &arch,
        vec![
            a,
            c,
            b,
            task_by_name("D"),
            task_by_name("E"),
            task_by_name("F"),
            task_by_name("G"),
            task_by_name("H"),
            i,
            j,
        ],
    );
    for (k, name) in ["D", "E"].iter().enumerate() {
        let t = task_by_name(name);
        mapping.detach(t);
        if k == 0 {
            mapping.insert_new_context(t, 0, 0, 0);
        } else {
            mapping.insert_hardware(t, 0, 0, 0);
        }
    }
    for (k, name) in ["F", "G", "H"].iter().enumerate() {
        let t = task_by_name(name);
        mapping.detach(t);
        if k == 0 {
            mapping.insert_new_context(t, 0, 1, 0);
        } else {
            mapping.insert_hardware(t, 0, 1, 0);
        }
    }
    mapping.validate(&app, &arch)?;

    let eval = evaluate(&app, &arch, &mapping)?;
    println!(
        "makespan {} | contexts {} | reconfig {} + {}",
        eval.makespan,
        eval.n_contexts,
        eval.breakdown.initial_reconfig,
        eval.breakdown.dynamic_reconfig
    );
    println!(
        "critical path: {}",
        eval.critical_tasks
            .iter()
            .map(|t| app
                .task(*t)
                .map(|x| x.name().to_string())
                .unwrap_or_default())
            .collect::<Vec<_>>()
            .join(" -> ")
    );
    println!();
    let chart = GanttChart::extract(&app, &arch, &mapping, &eval);
    println!("{}", chart.render_ascii(&app, &arch, 90));
    Ok(())
}
