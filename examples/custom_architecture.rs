//! Beyond the paper's fixed platform: a dual-processor system with an
//! ASIC accelerator next to the FPGA. The same explorer handles it
//! unchanged — the point of the paper's object-oriented resource model.
//!
//! Also compares the annealer against the GA, random-search and
//! hill-climbing baselines on this architecture.
//!
//! Run with: `cargo run --release --example custom_architecture`

use rdse::baseline::{hill_climb, random_search, GaOptions, GeneticExplorer, HillClimbOptions};
use rdse::mapping::{explore, ExploreOptions};
use rdse::model::units::{Clbs, Micros};
use rdse::model::Architecture;
use rdse::workloads::{layered_dag, LayeredDagConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = layered_dag(
        &LayeredDagConfig {
            layers: 6,
            width: 4,
            edge_percent: 35,
            hw_percent: 75,
        },
        2024,
    );
    let arch = Architecture::builder("hetero-soc")
        .processor("cpu0", 1.0)
        .processor("cpu1", 1.0)
        .drlc("fpga", Clbs::new(500), Micros::new(8.0), 3.0)
        .asic("crypto-accel", 2.0)
        .bus_rate(48.0)
        .build()?;

    println!(
        "application: {} tasks, {} all-software",
        app.n_tasks(),
        app.total_sw_time()
    );
    println!(
        "architecture: {} processors, {} DRLC, {} ASIC\n",
        arch.processors().len(),
        arch.drlcs().len(),
        arch.asics().len()
    );

    let sa = explore(
        &app,
        &arch,
        &ExploreOptions {
            max_iterations: 8_000,
            warmup_iterations: 1_500,
            seed: 7,
            ..ExploreOptions::default()
        },
    )?;
    println!(
        "simulated annealing : {} ({} contexts) in {:?}",
        sa.evaluation.makespan, sa.evaluation.n_contexts, sa.run.elapsed
    );

    let ga = GeneticExplorer::new(
        &app,
        &arch,
        GaOptions {
            population: 100,
            generations: 60,
            seed: 7,
            ..GaOptions::default()
        },
    )
    .run()?;
    println!(
        "genetic algorithm   : {} in {:?} ({} evaluations)",
        ga.evaluation.makespan, ga.elapsed, ga.evaluations
    );

    let (_, rs) = random_search(&app, &arch, 2_000, 7)?;
    println!("random search       : {} (2000 samples)", rs.makespan);

    let (_, hc) = hill_climb(
        &app,
        &arch,
        &HillClimbOptions {
            moves_per_restart: 4_000,
            restarts: 2,
            seed: 7,
        },
    )?;
    println!("hill climbing       : {}", hc.makespan);
    Ok(())
}
