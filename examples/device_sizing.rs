//! Device sizing: the §5 by-product question — what is the smallest
//! FPGA for which the 40 ms constraint is attained? A miniature version
//! of the Fig. 3 sweep (few sizes, few runs) answers it in seconds, and
//! the shared [`ParetoFront`] reports the size/latency trade-off curve
//! instead of a hand-rolled argmin.
//!
//! Run with: `cargo run --release --example device_sizing`

use rdse::anneal::{Dominance, ParetoFront};
use rdse::mapping::{explore, ExploreOptions};
use rdse::workloads::{epicure_architecture, motion_detection_app, MOTION_DEADLINE};

/// One corner of the sizing trade-off: device capacity vs best
/// makespan achieved on it (both minimized).
#[derive(Debug, Clone, Copy, PartialEq)]
struct SizingPoint {
    clbs: u32,
    best_ms: f64,
}

impl Dominance for SizingPoint {
    fn dominates(&self, other: &Self) -> bool {
        self.clbs <= other.clbs
            && self.best_ms <= other.best_ms
            && (self.clbs < other.clbs || self.best_ms < other.best_ms)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = motion_detection_app();
    let sizes = [100u32, 200, 400, 600, 800, 1200, 2000, 4000];
    let runs = 5u64;

    println!("size(CLBs)  best(ms)  mean(ms)  contexts  deadline");
    let mut front = ParetoFront::new();
    let mut smallest_ok = None;
    for size in sizes {
        let arch = epicure_architecture(size);
        let mut best = f64::INFINITY;
        let mut sum = 0.0;
        let mut ctxs = 0usize;
        for r in 0..runs {
            let out = explore(
                &app,
                &arch,
                &ExploreOptions {
                    max_iterations: 5_000,
                    warmup_iterations: 1_000,
                    seed: 100 + r,
                    ..ExploreOptions::default()
                },
            )?;
            let ms = out.evaluation.makespan.as_millis();
            sum += ms;
            if ms < best {
                best = ms;
                ctxs = out.evaluation.n_contexts;
            }
        }
        let mean = sum / runs as f64;
        let ok = best * 1000.0 <= MOTION_DEADLINE.value();
        if ok && smallest_ok.is_none() {
            smallest_ok = Some(size);
        }
        front.insert(SizingPoint {
            clbs: size,
            best_ms: best,
        });
        println!(
            "{size:>10}  {best:>8.1}  {mean:>8.1}  {ctxs:>8}  {}",
            if ok { "met" } else { "missed" }
        );
    }

    // The sizing Pareto front: every device size that buys latency.
    let corners = front.sorted_members(|a, b| a.clbs.cmp(&b.clbs));
    println!(
        "\nsize/latency front ({} of {} sizes are non-dominated):",
        corners.len(),
        sizes.len()
    );
    for c in &corners {
        println!("  {:>5} CLBs -> {:>6.1} ms", c.clbs, c.best_ms);
    }

    match smallest_ok {
        Some(size) => {
            println!("\nsmallest device meeting the {MOTION_DEADLINE} constraint: {size} CLBs")
        }
        None => println!("\nno tested device meets the constraint"),
    }
    Ok(())
}
