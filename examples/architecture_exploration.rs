//! The general method behind the paper (its reference [11]): let the
//! annealer explore the *architecture itself* with the m3/m4
//! resource-removal/creation moves, minimizing system cost under a
//! performance constraint. The DATE'05 experiments fix the platform
//! (probability of the moves set to zero); here they are switched on.
//!
//! Run with: `cargo run --release --example architecture_exploration`

use rdse::mapping::{explore_architecture, ArchExploreOptions, ResourceCatalog};
use rdse::model::units::{Clbs, Micros};
use rdse::model::{Architecture, DrlcSpec, ProcessorSpec};
use rdse::workloads::{motion_detection_app, MOTION_DEADLINE};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = motion_detection_app();

    // Component library: one CPU class and three FPGA sizes with
    // size-proportional cost.
    let catalog = ResourceCatalog {
        processors: vec![ProcessorSpec::new("arm922", 10.0)],
        drlcs: vec![
            DrlcSpec::new("virtex-500", Clbs::new(500), Micros::new(22.5), 12.0),
            DrlcSpec::new("virtex-1000", Clbs::new(1000), Micros::new(22.5), 20.0),
            DrlcSpec::new("virtex-2000", Clbs::new(2000), Micros::new(22.5), 35.0),
        ],
        asics: vec![],
    };

    // Start deliberately over-provisioned: the biggest FPGA.
    let initial = Architecture::builder("over-provisioned")
        .processor("arm922", 10.0)
        .drlc("virtex-2000", Clbs::new(2000), Micros::new(22.5), 35.0)
        .bus_rate(25.0)
        .build()?;
    println!(
        "initial architecture: cost {:.0} ({} processors, {} DRLCs, {} ASICs)",
        initial.total_cost(),
        initial.processors().len(),
        initial.drlcs().len(),
        initial.asics().len()
    );

    for (label, deadline) in [
        ("tight (40 ms, the paper's constraint)", MOTION_DEADLINE),
        (
            "loose (80 ms, software almost suffices)",
            Micros::new(80_000.0),
        ),
    ] {
        let out = explore_architecture(
            &app,
            initial.clone(),
            &catalog,
            &ArchExploreOptions {
                max_iterations: 60_000,
                warmup_iterations: 5_000,
                lambda: 0.2,
                deadline,
                seed: 11,
                ..ArchExploreOptions::default()
            },
        )?;
        println!("\ndeadline {label}:");
        println!(
            "  selected: cost {:.0} — {} processor(s), {} DRLC(s) {:?}, {} ASIC(s)",
            out.architecture.total_cost(),
            out.architecture.processors().len(),
            out.architecture.drlcs().len(),
            out.architecture
                .drlcs()
                .iter()
                .map(|d| d.n_clbs().value())
                .collect::<Vec<_>>(),
            out.architecture.asics().len()
        );
        println!(
            "  makespan {} ({} contexts) -> constraint {}",
            out.evaluation.makespan,
            out.evaluation.n_contexts,
            if out.evaluation.makespan <= deadline {
                "met"
            } else {
                "missed"
            }
        );
        // The co-exploration's cost/performance curve: every accepted
        // architecture × mapping state, reduced to its non-dominated
        // (system cost, makespan) corners by the shared ParetoFront.
        let corners = out
            .front
            .sorted_members(|a, b| a.system_cost.total_cmp(&b.system_cost));
        println!("  cost/performance front ({} corners):", corners.len());
        for c in &corners {
            println!("    cost {:>5.0} -> {:>9.1} us", c.system_cost, c.makespan);
        }
    }
    Ok(())
}
