//! The `rdse` command-line tool: generate benchmark models, explore
//! mappings (single-chain or parallel portfolio), sweep architecture
//! grids, render schedules, and validate them by simulation.
//!
//! ```text
//! rdse generate <motion|figure1|layered|series-parallel> [--clbs N] [--seed N]
//!               [--sections N] [--branches N] [--dir D]
//! rdse explore  --app F.json --arch F.json [--iters N] [--warmup N]
//!               [--seed N] [--lambda X] [--chains K] [--threads T]
//!               [--exchange-every E] [--gantt] [--profile]
//!               [--save-mapping F]
//!               [--objective makespan|weighted:<w_mk>,<w_area>,<w_rc>|lexi:<order>]
//! rdse sweep    [--app F.json] [--clbs A,B,...] [--bus A,B,...]
//!               [--iters N] [--seed N] [--chains K] [--threads T]
//!               [--out F.json] [--csv F.csv]
//! rdse simulate --app F.json --arch F.json --mapping F.json [--contention]
//! rdse space    --app F.json
//! rdse corpus   list
//! rdse corpus   run [--smoke] [--families a,b] [--arches a,b] [--seeds 1,2]
//!               [--iters N] [--warmup N] [--chains K] [--threads T]
//!               [--exchange-every E] [--walk-steps W] [--out F.ndjson]
//!               [--golden F] [--write-golden F]
//! ```

use rdse::corpus::{
    cross_corpus, run_corpus, smoke_corpus, ArchFamily, CorpusOptions, WorkloadFamily,
};
use rdse::mapping::{
    chain_seed, evaluate, explore, explore_parallel, lexi_min, CostVector, Dominance,
    ExploreOptions, GanttChart, Mapping, Objective, ObjectiveKey, ParallelOptions, ParetoFront,
};
use rdse::model::units::{Clbs, Micros};
use rdse::model::{Architecture, TaskGraph};
use rdse::sim::{simulate, SimConfig};
use rdse::workloads::{
    epicure_architecture, figure1_app, layered_dag, motion_detection_app, series_parallel_dag,
    LayeredDagConfig,
};
use serde::Serialize;
use std::process::ExitCode;
use std::sync::Mutex;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn arg_num<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    arg_value(args, flag)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         rdse generate <motion|figure1|layered|series-parallel> [--clbs N] [--seed N]\n                [--sections N] [--branches N] [--dir D]\n  \
         rdse explore  --app F.json --arch F.json [--iters N] [--warmup N] [--seed N] [--lambda X]\n                [--chains K] [--threads T] [--exchange-every E] [--gantt] [--profile] [--save-mapping F]\n                [--objective makespan|weighted:<w_mk>,<w_area>,<w_rc>|lexi:<order>]\n  \
         rdse sweep    [--app F.json] [--clbs A,B,...] [--bus A,B,...] [--iters N] [--seed N]\n                [--chains K] [--threads T] [--exchange-every E] [--out F.json] [--csv F.csv]\n  \
         rdse simulate --app F.json --arch F.json --mapping F.json [--contention]\n  \
         rdse space    --app F.json\n  \
         rdse corpus   list\n  \
         rdse corpus   run [--smoke] [--families a,b] [--arches a,b] [--seeds 1,2] [--iters N]\n                [--warmup N] [--chains K] [--threads T] [--exchange-every E] [--walk-steps W]\n                [--out F.ndjson] [--golden F] [--write-golden F]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "generate" => generate(&args),
        "explore" => run_explore(&args),
        "sweep" => run_sweep(&args),
        "simulate" => run_simulate(&args),
        "space" => run_space(&args),
        "corpus" => run_corpus_cmd(&args),
        _ => usage(),
    }
}

/// Exit code for a malformed command line that was understood but
/// rejected (e.g. a bad `--objective` spec), distinct from runtime
/// failures (1).
const EXIT_USAGE: u8 = 2;

/// Parses `--objective makespan | weighted:<w_mk>,<w_area>,<w_rc> |
/// lexi:<axis>[,<axis>...]` into an [`Objective`]. `None` when the
/// flag is absent (default: minimize makespan).
///
/// Errors name the offending part, and callers exit with code 2:
/// unknown scheme, wrong weight arity, negative/non-finite weights,
/// unknown or duplicate lexicographic axes.
fn parse_objective(args: &[String]) -> Result<Option<Objective>, String> {
    let Some(spec) = arg_value(args, "--objective") else {
        return Ok(None);
    };
    if spec == "makespan" {
        return Ok(Some(Objective::MinimizeMakespan));
    }
    if let Some(weights) = spec.strip_prefix("weighted:") {
        let parts: Vec<&str> = weights.split(',').collect();
        if parts.len() != 3 {
            return Err(format!(
                "--objective weighted takes exactly 3 weights \
                 (w_makespan,w_area,w_reconfig), got {}",
                parts.len()
            ));
        }
        let mut w = [0.0f64; 3];
        for (slot, part) in w.iter_mut().zip(&parts) {
            *slot = part
                .trim()
                .parse()
                .map_err(|_| format!("--objective weighted: '{part}' is not a number"))?;
        }
        return Objective::weighted(w[0], w[1], w[2])
            .map(Some)
            .map_err(|e| format!("--objective weighted: {e}"));
    }
    if let Some(order) = spec.strip_prefix("lexi:") {
        let keys: Result<Vec<ObjectiveKey>, String> = order
            .split(',')
            .map(|name| {
                let name = name.trim();
                ObjectiveKey::parse(name).ok_or_else(|| {
                    format!(
                        "--objective lexi: unknown axis '{name}' \
                         (expected makespan, area, reconfig or contexts)"
                    )
                })
            })
            .collect();
        return Objective::lexicographic(&keys?)
            .map(Some)
            .map_err(|e| format!("--objective lexi: {e}"));
    }
    Err(format!(
        "unknown --objective scheme '{spec}' \
         (expected makespan, weighted:<w_mk>,<w_area>,<w_rc> or lexi:<order>)"
    ))
}

/// Human-readable description of an objective for report headers.
fn describe_objective(objective: &Objective) -> String {
    match objective {
        Objective::MinimizeMakespan => "minimize makespan".into(),
        Objective::DeadlinePenalty { deadline, .. } => {
            format!("deadline-penalized makespan (deadline {deadline})")
        }
        Objective::Weighted {
            w_makespan,
            w_area,
            w_reconfig,
        } => format!("weighted sum {w_makespan}*makespan + {w_area}*area + {w_reconfig}*reconfig"),
        Objective::Lexicographic { order } => {
            let names: Vec<&str> = order.iter().flatten().map(|k| k.name()).collect();
            format!("lexicographic {}", names.join(" > "))
        }
    }
}

/// Prints the Pareto front of an exploration in canonical
/// (makespan-ascending) order.
fn print_front(front: &ParetoFront<CostVector>) {
    println!(
        "pareto front  : {} non-dominated point(s) (makespan_us, clb_area, reconfig_us, contexts)",
        front.len()
    );
    for v in front.sorted_members(|a, b| a.makespan.total_cmp(&b.makespan)) {
        println!(
            "  ({:.1}, {}, {:.1}, {})",
            v.makespan, v.clb_area as u32, v.reconfig_overhead, v.contexts as u32
        );
    }
}

fn load_models(args: &[String]) -> Result<(TaskGraph, Architecture), String> {
    let app_path = arg_value(args, "--app").ok_or("missing --app")?;
    let arch_path = arg_value(args, "--arch").ok_or("missing --arch")?;
    let app = TaskGraph::load(&app_path).map_err(|e| format!("{app_path}: {e}"))?;
    let arch = Architecture::load(&arch_path).map_err(|e| format!("{arch_path}: {e}"))?;
    Ok((app, arch))
}

fn generate(args: &[String]) -> ExitCode {
    let kind = args.get(1).map(String::as_str).unwrap_or("motion");
    let clbs: u32 = arg_num(args, "--clbs", 2000);
    let seed: u64 = arg_num(args, "--seed", 1);
    let dir = arg_value(args, "--dir").unwrap_or_else(|| ".".into());
    let (app, name) = match kind {
        "motion" => (motion_detection_app(), "motion"),
        "figure1" => (figure1_app(), "figure1"),
        "layered" => (layered_dag(&LayeredDagConfig::default(), seed), "layered"),
        "series-parallel" => {
            let sections: usize = arg_num(args, "--sections", 4);
            let branches: usize = arg_num(args, "--branches", 3);
            (
                series_parallel_dag(sections, branches, seed),
                "series-parallel",
            )
        }
        other => {
            eprintln!("unknown workload '{other}'");
            return usage();
        }
    };
    let arch = epicure_architecture(clbs);
    let app_path = format!("{dir}/{name}-app.json");
    let arch_path = format!("{dir}/{name}-arch.json");
    if let Err(e) = app.save(&app_path).and_then(|()| arch.save(&arch_path)) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {app_path} ({} tasks) and {arch_path} ({clbs} CLBs)",
        app.n_tasks()
    );
    ExitCode::SUCCESS
}

fn run_explore(args: &[String]) -> ExitCode {
    let (app, arch) = match load_models(args) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let objective = match parse_objective(args) {
        Ok(o) => o.unwrap_or(Objective::MinimizeMakespan),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let opts = ExploreOptions {
        max_iterations: arg_num(args, "--iters", 5_000),
        warmup_iterations: arg_num(args, "--warmup", 1_200),
        seed: arg_num(args, "--seed", 1),
        lambda: arg_num(args, "--lambda", 0.5),
        objective,
        ..ExploreOptions::default()
    };
    let chains: usize = arg_num(args, "--chains", 1);

    let (outcome, portfolio) = if chains > 1 {
        let popts = ParallelOptions {
            base: opts.clone(),
            chains,
            threads: arg_num(args, "--threads", 0),
            exchange_every: arg_num(args, "--exchange-every", 500),
        };
        match explore_parallel(&app, &arch, &popts) {
            Ok(p) => {
                let mapping = p.mapping.clone();
                let evaluation = p.evaluation.clone();
                let run = p.chains[p.winner].run.clone();
                let eval_stats = p.chains[p.winner].eval_stats;
                (
                    rdse::mapping::ExploreOutcome {
                        mapping,
                        evaluation,
                        run,
                        eval_stats,
                    },
                    Some(p),
                )
            }
            Err(e) => {
                eprintln!("exploration failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match explore(&app, &arch, &opts) {
            Ok(o) => (o, None),
            Err(e) => {
                eprintln!("exploration failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    println!(
        "best makespan : {} ({} -> {:.1}% of initial)",
        outcome.evaluation.makespan,
        outcome.run.stop_description(),
        100.0 * outcome.run.best_cost / outcome.run.initial_cost
    );
    println!(
        "contexts      : {} | hardware tasks: {}/{}",
        outcome.evaluation.n_contexts,
        outcome.evaluation.n_hw_tasks,
        app.n_tasks()
    );
    println!(
        "breakdown     : reconfig {} + {} | comp/comm {}",
        outcome.evaluation.breakdown.initial_reconfig,
        outcome.evaluation.breakdown.dynamic_reconfig,
        outcome.evaluation.breakdown.computation_communication
    );
    println!("objective     : {}", describe_objective(&opts.objective));
    let front = match &portfolio {
        Some(p) => &p.front,
        None => outcome.front(),
    };
    print_front(front);
    if let Objective::Lexicographic { order } = &opts.objective {
        // The engine's best snapshot is the tiered winner (ties on the
        // primary axis are broken by lower tiers), so this vector is
        // exactly the solution reported above and saved by
        // --save-mapping. lexi_min over the merged front can only tie
        // it on the ordered axes.
        let win = &outcome.run.best_objectives;
        debug_assert!(lexi_min(front, order).is_some());
        println!(
            "lexi winner   : ({:.1}, {}, {:.1}, {})",
            win.makespan, win.clb_area as u32, win.reconfig_overhead, win.contexts as u32
        );
    }
    if let Some(p) = &portfolio {
        println!(
            "portfolio     : {} chains, winner {} | wall time {:?}",
            p.chains.len(),
            p.winner,
            p.elapsed
        );
        for c in &p.chains {
            println!(
                "  chain {:>2} (seed {:>20}): {} after {} iters, {} accepted",
                c.chain, c.seed, c.evaluation.makespan, c.run.iterations, c.run.accepted
            );
        }
    } else {
        println!("wall time     : {:?}", outcome.run.elapsed);
    }
    if args.iter().any(|a| a == "--profile") {
        match &portfolio {
            Some(p) => {
                for c in &p.chains {
                    print_profile(&format!("chain {:>2}", c.chain), &c.run, c.eval_stats);
                }
            }
            None => print_profile("chain  0", &outcome.run, outcome.eval_stats),
        }
    }
    if args.iter().any(|a| a == "--gantt") {
        let chart = GanttChart::extract(&app, &arch, &outcome.mapping, &outcome.evaluation);
        println!("{}", chart.render_ascii(&app, &arch, 100));
    }
    if let Some(path) = arg_value(args, "--save-mapping") {
        match save_json(&path, &outcome.mapping) {
            Ok(()) => println!("mapping saved : {path}"),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// One `--profile` line: step throughput, move statistics and the
/// evaluator's allocation-free-step confirmation for one chain.
fn print_profile<C>(
    label: &str,
    run: &rdse::anneal::RunResult<C>,
    stats: rdse::mapping::EvaluatorStats,
) {
    let secs = run.elapsed.as_secs_f64();
    let steps_per_sec = if secs > 0.0 {
        run.iterations as f64 / secs
    } else {
        0.0
    };
    let alloc_free = if stats.arenas_warm() {
        format!(
            "yes (arenas stable since eval {} of {})",
            stats.last_growth_eval, stats.evaluations
        )
    } else {
        "no (arenas still growing)".to_string()
    };
    let mean_cone = if stats.repairs > 0 {
        stats.cone_nodes as f64 / stats.repairs as f64
    } else {
        0.0
    };
    println!(
        "profile {label}: {:.0} steps/s ({} steps in {:?}) | accepted {} rejected {} infeasible {} | allocation-free steps: {}",
        steps_per_sec, run.iterations, run.elapsed, run.accepted, run.rejected, run.infeasible, alloc_free
    );
    println!(
        "profile {label}: repairs {} (mean cone {:.1}, max cone {}) | full passes {} | fall-backs {}",
        stats.repairs, mean_cone, stats.max_cone, stats.full_passes, stats.fallbacks
    );
}

/// Serializes `value` to `path`, with an actionable message when the
/// target directory is missing or not writable.
fn save_json<T: Serialize>(path: &str, value: &T) -> Result<(), String> {
    let json = serde_json::to_string_pretty(value).map_err(|e| format!("cannot serialize: {e}"))?;
    let parent = std::path::Path::new(path)
        .parent()
        .filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = parent {
        if !dir.is_dir() {
            return Err(format!(
                "cannot write '{path}': directory '{}' does not exist",
                dir.display()
            ));
        }
    }
    std::fs::write(path, json)
        .map_err(|e| format!("cannot write '{path}': {e} (is the directory writable?)"))
}

/// One grid point of a sweep report.
#[derive(Debug, Clone, Serialize)]
struct SweepPoint {
    clbs: u32,
    bus_bytes_per_micro: f64,
    makespan_ms: f64,
    n_contexts: usize,
    n_hw_tasks: usize,
    /// Peak context CLB occupancy of the best mapping (the clb_area
    /// objective — how much of the device the winner actually uses).
    clb_area: u32,
    initial_reconfig_ms: f64,
    dynamic_reconfig_ms: f64,
    winner_chain: usize,
    iterations: u64,
    /// `true` when no other grid point has ≤ CLBs, ≤ bus rate *and*
    /// ≤ makespan with at least one strict inequality — i.e. the point
    /// is a member of the shared [`ParetoFront`] over the grid.
    pareto: bool,
}

impl SweepPoint {
    /// The point's coordinates in the sweep's objective space
    /// (device CLBs, bus rate, makespan — all minimized).
    fn objectives(&self) -> SweepObjectives {
        SweepObjectives {
            clbs: self.clbs,
            bus_bytes_per_micro: self.bus_bytes_per_micro,
            makespan_ms: self.makespan_ms,
        }
    }
}

/// The sweep's objective space: provisioned area × bus rate ×
/// achieved makespan, all minimized. A report-layer point, so it
/// implements [`Dominance`] directly rather than through a scalarizable
/// [`rdse::mapping::Cost`].
#[derive(Debug, Clone, Copy, PartialEq)]
struct SweepObjectives {
    clbs: u32,
    bus_bytes_per_micro: f64,
    makespan_ms: f64,
}

impl Dominance for SweepObjectives {
    fn dominates(&self, other: &Self) -> bool {
        self.clbs <= other.clbs
            && self.bus_bytes_per_micro <= other.bus_bytes_per_micro
            && self.makespan_ms <= other.makespan_ms
            && (self.clbs < other.clbs
                || self.bus_bytes_per_micro < other.bus_bytes_per_micro
                || self.makespan_ms < other.makespan_ms)
    }
}

/// The full sweep report serialized to `--out`.
#[derive(Debug, Clone, Serialize)]
struct SweepReport {
    workload: String,
    seed: u64,
    chains: usize,
    iterations_per_point: u64,
    /// Members of the (clbs, bus, makespan) Pareto front over the grid.
    front_size: usize,
    points: Vec<SweepPoint>,
}

/// Parses a comma-separated `--flag a,b,c` list. Unlike the scalar
/// [`arg_num`] fallback, a malformed entry is an error — silently
/// dropping it would shrink the sweep grid behind the user's back.
fn parse_list<T: std::str::FromStr + Copy>(
    args: &[String],
    flag: &str,
    default: &[T],
) -> Result<Vec<T>, String> {
    match arg_value(args, flag) {
        None => Ok(default.to_vec()),
        Some(v) => v
            .split(',')
            .map(|s| {
                let s = s.trim();
                s.parse().map_err(|_| format!("invalid {flag} entry '{s}'"))
            })
            .collect(),
    }
}

/// Creates `path`'s parent directory (and ancestors) if missing, so
/// report flags like `--out results/sweep.json` work from a fresh
/// checkout.
fn ensure_parent_dir(path: &str) -> Result<(), String> {
    match std::path::Path::new(path).parent() {
        Some(dir) if !dir.as_os_str().is_empty() => std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create '{}': {e}", dir.display())),
        _ => Ok(()),
    }
}

/// Fans the workload out over a CLB-count × bus-width grid, exploring
/// every point in parallel, and reports the Pareto-optimal
/// (area, bus, makespan) corners.
fn run_sweep(args: &[String]) -> ExitCode {
    let app = match arg_value(args, "--app") {
        Some(path) => match TaskGraph::load(&path) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => motion_detection_app(),
    };
    let grids = parse_list(args, "--clbs", &[400u32, 800, 1500, 2000, 3000, 5000])
        .and_then(|c| parse_list(args, "--bus", &[25.0f64, 50.0, 100.0]).map(|b| (c, b)));
    let (clbs_grid, bus_grid) = match grids {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if clbs_grid.is_empty() || bus_grid.is_empty() {
        eprintln!("error: empty --clbs or --bus grid");
        return ExitCode::FAILURE;
    }
    let iters: u64 = arg_num(args, "--iters", 5_000);
    let warmup: u64 = arg_num(args, "--warmup", iters / 5);
    let seed: u64 = arg_num(args, "--seed", 1);
    let lambda: f64 = arg_num(args, "--lambda", 0.5);
    let chains: usize = arg_num(args, "--chains", 1);
    let exchange_every: u64 = arg_num(args, "--exchange-every", 500);
    let threads: usize = arg_num(args, "--threads", 0);
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };

    // The grid, in deterministic order; each point gets its own master
    // seed so results do not depend on which worker picks it up.
    let mut grid: Vec<(usize, u32, f64)> = Vec::new();
    for &c in &clbs_grid {
        for &b in &bus_grid {
            grid.push((grid.len(), c, b));
        }
    }
    let n_points = grid.len();
    // Grid points are the primary unit of parallelism; threads left
    // over by a small grid go to each point's chains (harmless for
    // determinism — explore_parallel is thread-count invariant).
    let pool = threads.min(n_points).max(1);
    let inner_threads = (threads / pool).max(1);
    let work: Mutex<Vec<(usize, u32, f64)>> = Mutex::new(grid);
    let results: Mutex<Vec<(usize, SweepPoint)>> = Mutex::new(Vec::with_capacity(n_points));
    let failure: Mutex<Option<String>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..pool {
            scope.spawn(|| loop {
                // A failure anywhere aborts the remaining grid instead
                // of burning cores on a report that will be discarded.
                if failure.lock().expect("failure lock").is_some() {
                    break;
                }
                let Some((idx, clbs, bus)) = work.lock().expect("work queue lock").pop() else {
                    break;
                };
                let arch = match Architecture::builder("epicure-sweep")
                    .processor("arm922", 10.0)
                    .drlc("virtex-e", Clbs::new(clbs), Micros::new(22.5), 25.0)
                    .bus_rate(bus)
                    .build()
                {
                    Ok(a) => a,
                    Err(e) => {
                        *failure.lock().expect("failure lock") = Some(format!(
                            "invalid architecture ({clbs} CLBs, bus {bus}): {e}"
                        ));
                        break;
                    }
                };
                let popts = ParallelOptions {
                    base: ExploreOptions {
                        max_iterations: iters,
                        warmup_iterations: warmup,
                        seed: chain_seed(seed, idx + 1),
                        lambda,
                        ..ExploreOptions::default()
                    },
                    chains,
                    threads: inner_threads,
                    exchange_every,
                };
                match explore_parallel(&app, &arch, &popts) {
                    Ok(p) => {
                        let point = SweepPoint {
                            clbs,
                            bus_bytes_per_micro: bus,
                            makespan_ms: p.evaluation.makespan.as_millis(),
                            n_contexts: p.evaluation.n_contexts,
                            n_hw_tasks: p.evaluation.n_hw_tasks,
                            clb_area: p.evaluation.clb_area.value(),
                            initial_reconfig_ms: p
                                .evaluation
                                .breakdown
                                .initial_reconfig
                                .as_millis(),
                            dynamic_reconfig_ms: p
                                .evaluation
                                .breakdown
                                .dynamic_reconfig
                                .as_millis(),
                            winner_chain: p.winner,
                            iterations: p.chains.iter().map(|c| c.run.iterations).sum(),
                            pareto: false,
                        };
                        results.lock().expect("results lock").push((idx, point));
                        eprintln!(
                            "point {clbs:>5} CLBs x bus {bus:>6.1}: {:.1} ms",
                            p.evaluation.makespan.as_millis()
                        );
                    }
                    Err(e) => {
                        *failure.lock().expect("failure lock") =
                            Some(format!("exploration failed at {clbs} CLBs, bus {bus}: {e}"));
                        break;
                    }
                }
            });
        }
    });

    if let Some(e) = failure.into_inner().expect("failure lock") {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let mut rows = results.into_inner().expect("results lock");
    rows.sort_by_key(|(idx, _)| *idx);
    let mut points: Vec<SweepPoint> = rows.into_iter().map(|(_, p)| p).collect();

    // Pareto front over minimized (clbs, bus, makespan), via the shared
    // archive: a point is on the front iff its objective triple
    // survives in the ParetoFront of the whole grid. (Duplicate
    // triples share one archive slot, so equal corners are all
    // flagged — exactly the old hand-rolled semantics.)
    let mut grid_front = ParetoFront::new();
    for p in &points {
        grid_front.insert(p.objectives());
    }
    for p in &mut points {
        p.pareto = grid_front.contains(&p.objectives());
    }

    println!("clbs   bus_B_per_us  makespan_ms  contexts  hw_tasks  clb_area  pareto");
    for p in &points {
        println!(
            "{:>5}  {:>12.1}  {:>11.2}  {:>8}  {:>8}  {:>8}  {}",
            p.clbs,
            p.bus_bytes_per_micro,
            p.makespan_ms,
            p.n_contexts,
            p.n_hw_tasks,
            p.clb_area,
            if p.pareto { "*" } else { "" }
        );
    }
    let front: Vec<String> = points
        .iter()
        .filter(|p| p.pareto)
        .map(|p| {
            format!(
                "({} CLBs, {} B/us, {:.1} ms)",
                p.clbs, p.bus_bytes_per_micro, p.makespan_ms
            )
        })
        .collect();
    println!("pareto front : {}", front.join(" "));

    let report = SweepReport {
        workload: app.name().to_owned(),
        seed,
        chains,
        iterations_per_point: iters,
        front_size: grid_front.len(),
        points,
    };
    let out = arg_value(args, "--out").unwrap_or_else(|| "results/sweep.json".into());
    if let Err(e) = ensure_parent_dir(&out) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = save_json(&out, &report) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    println!("report saved : {out}");
    if let Some(csv) = arg_value(args, "--csv") {
        let mut text = String::from(
            "clbs,bus_bytes_per_micro,makespan_ms,n_contexts,n_hw_tasks,clb_area,\
             initial_reconfig_ms,dynamic_reconfig_ms,winner_chain,iterations,pareto\n",
        );
        for p in &report.points {
            text.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{}\n",
                p.clbs,
                p.bus_bytes_per_micro,
                p.makespan_ms,
                p.n_contexts,
                p.n_hw_tasks,
                p.clb_area,
                p.initial_reconfig_ms,
                p.dynamic_reconfig_ms,
                p.winner_chain,
                p.iterations,
                p.pareto
            ));
        }
        if let Err(e) = ensure_parent_dir(&csv).and_then(|()| {
            std::fs::write(&csv, text).map_err(|e| format!("cannot write '{csv}': {e}"))
        }) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        println!("csv saved    : {csv}");
    }
    ExitCode::SUCCESS
}

fn run_simulate(args: &[String]) -> ExitCode {
    let (app, arch) = match load_models(args) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let Some(mapping_path) = arg_value(args, "--mapping") else {
        eprintln!("missing --mapping");
        return usage();
    };
    let mapping: Mapping = match std::fs::read_to_string(&mapping_path)
        .map_err(|e| e.to_string())
        .and_then(|s| serde_json::from_str(&s).map_err(|e| e.to_string()))
    {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error reading {mapping_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = if args.iter().any(|a| a == "--contention") {
        SimConfig::with_contention()
    } else {
        SimConfig::contention_free()
    };
    match (
        evaluate(&app, &arch, &mapping),
        simulate(&app, &arch, &mapping, &cfg),
    ) {
        (Ok(analytic), Ok(report)) => {
            println!("analytic makespan : {}", analytic.makespan);
            println!("simulated makespan: {}", report.makespan);
            println!(
                "bus               : {} transfers, busy {}",
                report.n_transfers, report.bus_busy
            );
            println!("reconfiguration   : {}", report.reconfig_total);
            ExitCode::SUCCESS
        }
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("simulation failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parses `--families`/`--arches` comma lists into registry entries,
/// erroring on unknown names (silently dropping one would shrink the
/// corpus behind the user's back).
fn parse_family_list<T, F: Fn(&str) -> Option<T>>(
    args: &[String],
    flag: &str,
    parse: F,
    default: Vec<T>,
) -> Result<Vec<T>, String> {
    match arg_value(args, flag) {
        None => Ok(default),
        Some(v) => v
            .split(',')
            .map(|s| {
                let s = s.trim();
                parse(s).ok_or_else(|| format!("unknown {flag} entry '{s}'"))
            })
            .collect(),
    }
}

/// `rdse corpus list|run` — the scenario-corpus batch runner with the
/// four-way differential oracle (see the `rdse-corpus` crate docs).
fn run_corpus_cmd(args: &[String]) -> ExitCode {
    match args.get(1).map(String::as_str) {
        Some("list") => {
            println!(
                "workload families : {}",
                family_names(&WorkloadFamily::defaults(), WorkloadFamily::name)
            );
            println!(
                "arch families     : {}",
                family_names(&ArchFamily::all(), ArchFamily::name)
            );
            println!("smoke corpus      :");
            for spec in smoke_corpus() {
                println!("  {}", spec.id());
            }
            ExitCode::SUCCESS
        }
        Some("run") => run_corpus_run(args),
        _ => usage(),
    }
}

fn family_names<T>(families: &[T], name: impl Fn(&T) -> &'static str) -> String {
    families.iter().map(name).collect::<Vec<_>>().join(", ")
}

fn run_corpus_run(args: &[String]) -> ExitCode {
    let smoke = args.iter().any(|a| a == "--smoke");
    // --smoke pins the scenario list AND the exploration knobs: the
    // checked-in golden snapshot is only reproducible at the pinned
    // configuration. Only --threads stays free (it never affects
    // results) — combining --smoke with a pinned knob is an error, not
    // a silent ignore.
    if smoke {
        const PINNED: [&str; 8] = [
            "--families",
            "--arches",
            "--seeds",
            "--iters",
            "--warmup",
            "--chains",
            "--exchange-every",
            "--walk-steps",
        ];
        if let Some(flag) = PINNED.iter().find(|f| args.iter().any(|a| &a == f)) {
            eprintln!(
                "error: {flag} conflicts with --smoke (the smoke subset and its \
                 exploration knobs are pinned to the golden snapshot; drop --smoke \
                 to customize the corpus)"
            );
            return ExitCode::FAILURE;
        }
    }
    let (specs, opts) = if smoke {
        (
            smoke_corpus(),
            CorpusOptions {
                threads: arg_num(args, "--threads", 0),
                ..CorpusOptions::default()
            },
        )
    } else {
        let lists = parse_family_list(
            args,
            "--families",
            WorkloadFamily::parse,
            WorkloadFamily::defaults(),
        )
        .and_then(|w| {
            parse_family_list(
                args,
                "--arches",
                ArchFamily::parse,
                ArchFamily::all().to_vec(),
            )
            .map(|a| (w, a))
        })
        .and_then(|(w, a)| parse_list(args, "--seeds", &[1u64, 2, 3]).map(|s| (w, a, s)));
        let (workloads, arches, seeds) = match lists {
            Ok(l) => l,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let defaults = CorpusOptions::default();
        (
            cross_corpus(&workloads, &arches, &seeds),
            CorpusOptions {
                iters: arg_num(args, "--iters", defaults.iters),
                warmup: arg_num(args, "--warmup", defaults.warmup),
                chains: arg_num(args, "--chains", defaults.chains),
                exchange_every: arg_num(args, "--exchange-every", defaults.exchange_every),
                threads: arg_num(args, "--threads", 0),
                walk_steps: arg_num(args, "--walk-steps", defaults.walk_steps),
            },
        )
    };
    if specs.is_empty() {
        eprintln!("error: empty corpus");
        return ExitCode::FAILURE;
    }

    let report = match run_corpus(&specs, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("corpus FAILED: {e}");
            return ExitCode::FAILURE;
        }
    };
    for r in &report.records {
        println!(
            "{:<40} {:>12.1} us  {:>2} ctx  {:>2} hw  oracle pass ({} moves)",
            r.id,
            r.makespan.value(),
            r.n_contexts,
            r.n_hw_tasks,
            r.oracle_moves_checked
        );
    }
    println!(
        "corpus: {} scenarios, all four-way oracles passed in {:?}",
        report.records.len(),
        report.elapsed
    );

    if let Some(out) = arg_value(args, "--out") {
        if let Err(e) = ensure_parent_dir(&out)
            .and_then(|()| std::fs::write(&out, report.ndjson()).map_err(|e| e.to_string()))
        {
            eprintln!("error: cannot write '{out}': {e}");
            return ExitCode::FAILURE;
        }
        println!("matrix saved : {out}");
    }
    if let Some(path) = arg_value(args, "--write-golden") {
        if let Err(e) = ensure_parent_dir(&path)
            .and_then(|()| std::fs::write(&path, report.golden_text()).map_err(|e| e.to_string()))
        {
            eprintln!("error: cannot write '{path}': {e}");
            return ExitCode::FAILURE;
        }
        println!("golden saved : {path}");
    }
    if let Some(path) = arg_value(args, "--golden") {
        let expected = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read golden '{path}': {e}");
                return ExitCode::FAILURE;
            }
        };
        match report.diff_golden(&expected) {
            Ok(()) => println!("golden check : {} matches", path),
            Err(e) => {
                eprintln!("golden check FAILED against {path}:\n{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn run_space(args: &[String]) -> ExitCode {
    let Some(app_path) = arg_value(args, "--app") else {
        eprintln!("missing --app");
        return usage();
    };
    let app = match TaskGraph::load(&app_path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let g = app.precedence_graph();
    match rdse::graph::count_linear_extensions(&g, None) {
        Some(count) => {
            println!(
                "{}: {} tasks, {} total orders",
                app.name(),
                app.n_tasks(),
                count
            );
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("too many nodes/ideals to count exactly");
            ExitCode::FAILURE
        }
    }
}
