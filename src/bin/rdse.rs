//! The `rdse` command-line tool: generate benchmark models, explore
//! mappings (single-chain or parallel portfolio), sweep architecture
//! grids, render schedules, and validate them by simulation.
//!
//! ```text
//! rdse generate <motion|figure1|layered|series-parallel|scenario> [--clbs N] [--seed N]
//!               [--sections N] [--branches N] [--workload FAM] [--arch-family FAM] [--dir D]
//! rdse explore  --app F.json --arch F.json [--iters N] [--warmup N]
//!               [--seed N] [--lambda X] [--chains K] [--threads T]
//!               [--speculate W] [--exchange-every E] [--bandit]
//!               [--front-exchange] [--gantt] [--profile] [--save-mapping F]
//!               [--objective makespan|weighted:<w_mk>,<w_area>,<w_rc>|lexi:<order>]
//! rdse ga       --app F.json --arch F.json [--population N] [--generations N]
//!               [--seed N] [--nsga2]
//! rdse sweep    [--app F.json] [--clbs A,B,...] [--bus A,B,...]
//!               [--iters N] [--seed N] [--chains K] [--threads T]
//!               [--out F.json] [--csv F.csv]
//! rdse simulate --app F.json --arch F.json --mapping F.json [--contention]
//! rdse space    --app F.json
//! rdse corpus   list
//! rdse corpus   run [--smoke] [--families a,b] [--arches a,b] [--seeds 1,2]
//!               [--iters N] [--warmup N] [--chains K] [--threads T]
//!               [--exchange-every E] [--walk-steps W] [--out F.ndjson]
//!               [--golden F] [--write-golden F]
//! rdse serve    [--host H] [--port P] [--workers N] [--max-frame-len B]
//!               [--max-tasks N] [--max-iters N] [--max-chains N]
//!               [--max-sessions N] [--read-timeout-ms N]
//!               [--store F.aof] [--store-sync always|interval:N|never]
//! rdse store    <stats|compact|verify> --path F.aof
//! rdse submit   --addr HOST:PORT (--app F.json | --builtin NAME | --workload FAM)
//!               (--arch F.json | --clbs N | --arch-family FAM)
//!               [--app-seed N] [--arch-seed N] [--objective SPEC] [--iters N]
//!               [--warmup N] [--seed N] [--chains K] [--exchange-every E]
//!               [--quiet]
//! rdse submit   --addr HOST:PORT (--health | --shutdown | --get-job ID)
//! ```

use rdse::baseline::{GaOptions, GeneticExplorer};
use rdse::corpus::{
    cross_corpus, run_corpus, smoke_corpus, ArchFamily, CorpusOptions, WorkloadFamily,
};
use rdse::mapping::{
    chain_seed, evaluate, explore, explore_parallel, lexi_min, CostVector, Dominance,
    ExploreOptions, GanttChart, Mapping, Objective, ParallelOptions, ParetoFront,
};
use rdse::model::units::{Clbs, Micros};
use rdse::model::{Architecture, TaskGraph};
use rdse::serve::{
    client as serve_client,
    protocol::{AppSpec, ArchSpec, JobSpec},
    ClientOptions, Limits, ServeConfig, Server,
};
use rdse::sim::{simulate, SimConfig};
use rdse::store::{log::scan, Archive, ResultStore, SyncPolicy};
use rdse::workloads::{
    epicure_architecture, figure1_app, layered_dag, motion_detection_app, series_parallel_dag,
    LayeredDagConfig,
};
use serde::Serialize;
use std::process::ExitCode;
use std::sync::Mutex;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn arg_num<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    arg_value(args, flag)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         rdse generate <motion|figure1|layered|series-parallel> [--clbs N] [--seed N]\n                [--sections N] [--branches N] [--dir D]\n  \
         rdse explore  --app F.json --arch F.json [--iters N] [--warmup N] [--seed N] [--lambda X]\n                [--chains K] [--threads T] [--speculate W] [--exchange-every E] [--bandit]\n                [--front-exchange] [--gantt] [--profile] [--save-mapping F]\n                [--objective makespan|weighted:<w_mk>,<w_area>,<w_rc>|lexi:<order>]\n  \
         rdse ga       --app F.json --arch F.json [--population N] [--generations N] [--seed N] [--nsga2]\n  \
         rdse sweep    [--app F.json] [--clbs A,B,...] [--bus A,B,...] [--iters N] [--seed N]\n                [--chains K] [--threads T] [--exchange-every E] [--out F.json] [--csv F.csv]\n  \
         rdse simulate --app F.json --arch F.json --mapping F.json [--contention]\n  \
         rdse space    --app F.json\n  \
         rdse corpus   list\n  \
         rdse corpus   run [--smoke] [--families a,b] [--arches a,b] [--seeds 1,2] [--iters N]\n                [--warmup N] [--chains K] [--threads T] [--exchange-every E] [--walk-steps W]\n                [--out F.ndjson] [--golden F] [--write-golden F]\n  \
         rdse serve    [--host H] [--port P] [--workers N] [--max-frame-len B] [--max-tasks N]\n                [--max-iters N] [--max-chains N] [--max-sessions N] [--read-timeout-ms N]\n                [--store F.aof] [--store-sync always|interval:N|never]\n  \
         rdse store    <stats|compact|verify> --path F.aof\n  \
         rdse submit   --addr HOST:PORT (--app F.json | --builtin NAME | --workload FAM)\n                (--arch F.json | --clbs N | --arch-family FAM) [--objective SPEC] [--iters N]\n                [--seed N] [--chains K] [--quiet] | (--health | --shutdown | --get-job ID)"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "generate" => generate(&args),
        "explore" => run_explore(&args),
        "ga" => run_ga(&args),
        "sweep" => run_sweep(&args),
        "simulate" => run_simulate(&args),
        "space" => run_space(&args),
        "corpus" => run_corpus_cmd(&args),
        "serve" => run_serve(&args),
        "submit" => run_submit(&args),
        "store" => run_store(&args),
        _ => usage(),
    }
}

/// Exit code for a malformed command line that was understood but
/// rejected (e.g. a bad `--objective` spec), distinct from runtime
/// failures (1).
const EXIT_USAGE: u8 = 2;

/// Parses `--objective makespan | weighted:<w_mk>,<w_area>,<w_rc> |
/// lexi:<axis>[,<axis>...]` into an [`Objective`]. `None` when the
/// flag is absent (default: minimize makespan).
///
/// Errors name the offending part, and callers exit with code 2:
/// unknown scheme, wrong weight arity, negative/non-finite weights,
/// unknown or duplicate lexicographic axes.
fn parse_objective(args: &[String]) -> Result<Option<Objective>, String> {
    let Some(spec) = arg_value(args, "--objective") else {
        return Ok(None);
    };
    // The shared grammar lives on Objective so the server validates
    // submissions identically; its messages say "objective ...", which
    // becomes "--objective ..." here to name the offending flag.
    Objective::parse_spec(&spec)
        .map(Some)
        .map_err(|e| e.replacen("objective", "--objective", 1))
}

/// Prints the Pareto front of an exploration in canonical
/// (makespan-ascending) order.
fn print_front(front: &ParetoFront<CostVector>) {
    println!(
        "pareto front  : {} non-dominated point(s) (makespan_us, clb_area, reconfig_us, contexts)",
        front.len()
    );
    for v in front.sorted_members(|a, b| a.makespan.total_cmp(&b.makespan)) {
        println!(
            "  ({:.1}, {}, {:.1}, {})",
            v.makespan, v.clb_area as u32, v.reconfig_overhead, v.contexts as u32
        );
    }
}

fn load_models(args: &[String]) -> Result<(TaskGraph, Architecture), String> {
    let app_path = arg_value(args, "--app").ok_or("missing --app")?;
    let arch_path = arg_value(args, "--arch").ok_or("missing --arch")?;
    let app = TaskGraph::load(&app_path).map_err(|e| format!("{app_path}: {e}"))?;
    let arch = Architecture::load(&arch_path).map_err(|e| format!("{arch_path}: {e}"))?;
    Ok((app, arch))
}

fn generate(args: &[String]) -> ExitCode {
    let kind = args.get(1).map(String::as_str).unwrap_or("motion");
    let clbs: u32 = arg_num(args, "--clbs", 2000);
    let seed: u64 = arg_num(args, "--seed", 1);
    let dir = arg_value(args, "--dir").unwrap_or_else(|| ".".into());
    let (app, arch, name) = match kind {
        "motion" => (motion_detection_app(), epicure_architecture(clbs), "motion"),
        "figure1" => (figure1_app(), epicure_architecture(clbs), "figure1"),
        "layered" => (
            layered_dag(&LayeredDagConfig::default(), seed),
            epicure_architecture(clbs),
            "layered",
        ),
        "series-parallel" => {
            let sections: usize = arg_num(args, "--sections", 4);
            let branches: usize = arg_num(args, "--branches", 3);
            (
                series_parallel_dag(sections, branches, seed),
                epicure_architecture(clbs),
                "series-parallel",
            )
        }
        // A corpus scenario (workload family × platform template ×
        // seed), saved as files so the offline explore path can be
        // compared bit-for-bit against a served job naming the same
        // scenario.
        "scenario" => {
            let workload = arg_value(args, "--workload").unwrap_or_else(|| "layered".into());
            let arch_family = arg_value(args, "--arch-family").unwrap_or_else(|| "epicure".into());
            let Some(wf) = WorkloadFamily::parse(&workload) else {
                eprintln!("error: unknown --workload family '{workload}' (see `rdse corpus list`)");
                return ExitCode::from(EXIT_USAGE);
            };
            let Some(af) = ArchFamily::parse(&arch_family) else {
                eprintln!("error: unknown --arch-family '{arch_family}' (see `rdse corpus list`)");
                return ExitCode::from(EXIT_USAGE);
            };
            (wf.generate(seed), af.build(seed), "scenario")
        }
        other => {
            eprintln!("unknown workload '{other}'");
            return usage();
        }
    };
    let app_path = format!("{dir}/{name}-app.json");
    let arch_path = format!("{dir}/{name}-arch.json");
    if let Err(e) = app.save(&app_path).and_then(|()| arch.save(&arch_path)) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {app_path} ({} tasks) and {arch_path} ({clbs} CLBs)",
        app.n_tasks()
    );
    ExitCode::SUCCESS
}

fn run_explore(args: &[String]) -> ExitCode {
    let (app, arch) = match load_models(args) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let objective = match parse_objective(args) {
        Ok(o) => o.unwrap_or(Objective::MinimizeMakespan),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let opts = ExploreOptions {
        max_iterations: arg_num(args, "--iters", 5_000),
        warmup_iterations: arg_num(args, "--warmup", 1_200),
        seed: arg_num(args, "--seed", 1),
        lambda: arg_num(args, "--lambda", 0.5),
        objective,
        bandit_moves: args.iter().any(|a| a == "--bandit"),
        speculate: arg_num(args, "--speculate", 1),
        ..ExploreOptions::default()
    };
    let chains: usize = arg_num(args, "--chains", 1);

    let (outcome, portfolio) = if chains > 1 {
        let popts = ParallelOptions {
            base: opts.clone(),
            chains,
            threads: arg_num(args, "--threads", 0),
            exchange_every: arg_num(args, "--exchange-every", 500),
            warm_start: None,
            front_exchange: args.iter().any(|a| a == "--front-exchange"),
        };
        match explore_parallel(&app, &arch, &popts) {
            Ok(p) => {
                let mapping = p.mapping.clone();
                let evaluation = p.evaluation.clone();
                let run = p.chains[p.winner].run.clone();
                let eval_stats = p.chains[p.winner].eval_stats;
                (
                    rdse::mapping::ExploreOutcome {
                        mapping,
                        evaluation,
                        run,
                        eval_stats,
                    },
                    Some(p),
                )
            }
            Err(e) => {
                eprintln!("exploration failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match explore(&app, &arch, &opts) {
            Ok(o) => (o, None),
            Err(e) => {
                eprintln!("exploration failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    println!(
        "best makespan : {} ({} -> {:.1}% of initial)",
        outcome.evaluation.makespan,
        outcome.run.stop_description(),
        100.0 * outcome.run.best_cost / outcome.run.initial_cost
    );
    // Exact bit pattern for cross-process identity checks (the serve
    // path asserts its results against this line).
    println!(
        "makespan bits : {:016x}",
        outcome.evaluation.makespan.value().to_bits()
    );
    println!(
        "contexts      : {} | hardware tasks: {}/{}",
        outcome.evaluation.n_contexts,
        outcome.evaluation.n_hw_tasks,
        app.n_tasks()
    );
    println!(
        "breakdown     : reconfig {} + {} | comp/comm {}",
        outcome.evaluation.breakdown.initial_reconfig,
        outcome.evaluation.breakdown.dynamic_reconfig,
        outcome.evaluation.breakdown.computation_communication
    );
    println!("objective     : {}", opts.objective.describe());
    let front = match &portfolio {
        Some(p) => &p.front,
        None => outcome.front(),
    };
    print_front(front);
    if let Objective::Lexicographic { order } = &opts.objective {
        // The engine's best snapshot is the tiered winner (ties on the
        // primary axis are broken by lower tiers), so this vector is
        // exactly the solution reported above and saved by
        // --save-mapping. lexi_min over the merged front can only tie
        // it on the ordered axes.
        let win = &outcome.run.best_objectives;
        debug_assert!(lexi_min(front, order).is_some());
        println!(
            "lexi winner   : ({:.1}, {}, {:.1}, {})",
            win.makespan, win.clb_area as u32, win.reconfig_overhead, win.contexts as u32
        );
    }
    if let Some(p) = &portfolio {
        println!(
            "portfolio     : {} chains, winner {} | wall time {:?}",
            p.chains.len(),
            p.winner,
            p.elapsed
        );
        for c in &p.chains {
            println!(
                "  chain {:>2} (seed {:>20}): {} after {} iters, {} accepted",
                c.chain, c.seed, c.evaluation.makespan, c.run.iterations, c.run.accepted
            );
        }
    } else {
        println!("wall time     : {:?}", outcome.run.elapsed);
    }
    if args.iter().any(|a| a == "--profile") {
        match &portfolio {
            Some(p) => {
                for c in &p.chains {
                    print_profile(&format!("chain {:>2}", c.chain), &c.run, c.eval_stats);
                }
            }
            None => print_profile("chain  0", &outcome.run, outcome.eval_stats),
        }
    }
    if args.iter().any(|a| a == "--gantt") {
        let chart = GanttChart::extract(&app, &arch, &outcome.mapping, &outcome.evaluation);
        println!("{}", chart.render_ascii(&app, &arch, 100));
    }
    if let Some(path) = arg_value(args, "--save-mapping") {
        match save_json(&path, &outcome.mapping) {
            Ok(()) => println!("mapping saved : {path}"),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// The §5 baseline as a first-class command: the Ben Chehida & Auguin
/// style genetic algorithm over spatial partitions, scalar
/// (makespan-only) by default, NSGA-II over the full cost vector with
/// `--nsga2`. Deterministic per seed, like `explore`.
fn run_ga(args: &[String]) -> ExitCode {
    let (app, arch) = match load_models(args) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let nsga2 = args.iter().any(|a| a == "--nsga2");
    let opts = GaOptions {
        population: arg_num(args, "--population", 300),
        generations: arg_num(args, "--generations", 200),
        seed: arg_num(args, "--seed", 1),
        nsga2,
        ..GaOptions::default()
    };
    let outcome = match GeneticExplorer::new(&app, &arch, opts).run() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("GA failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "best makespan : {} ({} generations, {} evaluations)",
        outcome.evaluation.makespan, outcome.generations, outcome.evaluations
    );
    println!(
        "makespan bits : {:016x}",
        outcome.evaluation.makespan.value().to_bits()
    );
    println!(
        "contexts      : {} | hardware tasks: {}/{}",
        outcome.evaluation.n_contexts,
        outcome.evaluation.n_hw_tasks,
        app.n_tasks()
    );
    println!(
        "selection     : {}",
        if nsga2 {
            "NSGA-II (non-dominated rank + crowding distance)"
        } else {
            "scalar tournament (makespan)"
        }
    );
    print_front(&outcome.front);
    println!("wall time     : {:?}", outcome.elapsed);
    ExitCode::SUCCESS
}

/// One `--profile` line: step throughput, move statistics and the
/// evaluator's allocation-free-step confirmation for one chain.
fn print_profile<C>(
    label: &str,
    run: &rdse::anneal::RunResult<C>,
    stats: rdse::mapping::EvaluatorStats,
) {
    let secs = run.elapsed.as_secs_f64();
    let steps_per_sec = if secs > 0.0 {
        run.iterations as f64 / secs
    } else {
        0.0
    };
    let alloc_free = if stats.arenas_warm() {
        format!(
            "yes (arenas stable since eval {} of {})",
            stats.last_growth_eval, stats.evaluations
        )
    } else {
        "no (arenas still growing)".to_string()
    };
    let mean_cone = if stats.repairs > 0 {
        stats.cone_nodes as f64 / stats.repairs as f64
    } else {
        0.0
    };
    println!(
        "profile {label}: {:.0} steps/s ({} steps in {:?}) | accepted {} rejected {} infeasible {} | allocation-free steps: {}",
        steps_per_sec, run.iterations, run.elapsed, run.accepted, run.rejected, run.infeasible, alloc_free
    );
    println!(
        "profile {label}: repairs {} (mean cone {:.1}, max cone {}) | full passes {} | fall-backs {}",
        stats.repairs, mean_cone, stats.max_cone, stats.full_passes, stats.fallbacks
    );
    if stats.spec_rounds > 0 {
        println!(
            "profile {label}: speculated {} (committed {}, wasted {}) | mean useful prefix {:.2} over {} rounds",
            stats.speculated,
            stats.spec_committed,
            stats.spec_wasted,
            stats.mean_useful_prefix(),
            stats.spec_rounds
        );
    }
}

/// Serializes `value` to `path`, with an actionable message when the
/// target directory is missing or not writable.
fn save_json<T: Serialize>(path: &str, value: &T) -> Result<(), String> {
    let json = serde_json::to_string_pretty(value).map_err(|e| format!("cannot serialize: {e}"))?;
    let parent = std::path::Path::new(path)
        .parent()
        .filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = parent {
        if !dir.is_dir() {
            return Err(format!(
                "cannot write '{path}': directory '{}' does not exist",
                dir.display()
            ));
        }
    }
    std::fs::write(path, json)
        .map_err(|e| format!("cannot write '{path}': {e} (is the directory writable?)"))
}

/// One grid point of a sweep report.
#[derive(Debug, Clone, Serialize)]
struct SweepPoint {
    clbs: u32,
    bus_bytes_per_micro: f64,
    makespan_ms: f64,
    n_contexts: usize,
    n_hw_tasks: usize,
    /// Peak context CLB occupancy of the best mapping (the clb_area
    /// objective — how much of the device the winner actually uses).
    clb_area: u32,
    initial_reconfig_ms: f64,
    dynamic_reconfig_ms: f64,
    winner_chain: usize,
    iterations: u64,
    /// `true` when no other grid point has ≤ CLBs, ≤ bus rate *and*
    /// ≤ makespan with at least one strict inequality — i.e. the point
    /// is a member of the shared [`ParetoFront`] over the grid.
    pareto: bool,
}

impl SweepPoint {
    /// The point's coordinates in the sweep's objective space
    /// (device CLBs, bus rate, makespan — all minimized).
    fn objectives(&self) -> SweepObjectives {
        SweepObjectives {
            clbs: self.clbs,
            bus_bytes_per_micro: self.bus_bytes_per_micro,
            makespan_ms: self.makespan_ms,
        }
    }
}

/// The sweep's objective space: provisioned area × bus rate ×
/// achieved makespan, all minimized. A report-layer point, so it
/// implements [`Dominance`] directly rather than through a scalarizable
/// [`rdse::mapping::Cost`].
#[derive(Debug, Clone, Copy, PartialEq)]
struct SweepObjectives {
    clbs: u32,
    bus_bytes_per_micro: f64,
    makespan_ms: f64,
}

impl Dominance for SweepObjectives {
    fn dominates(&self, other: &Self) -> bool {
        self.clbs <= other.clbs
            && self.bus_bytes_per_micro <= other.bus_bytes_per_micro
            && self.makespan_ms <= other.makespan_ms
            && (self.clbs < other.clbs
                || self.bus_bytes_per_micro < other.bus_bytes_per_micro
                || self.makespan_ms < other.makespan_ms)
    }
}

/// The full sweep report serialized to `--out`.
#[derive(Debug, Clone, Serialize)]
struct SweepReport {
    workload: String,
    seed: u64,
    chains: usize,
    iterations_per_point: u64,
    /// Members of the (clbs, bus, makespan) Pareto front over the grid.
    front_size: usize,
    points: Vec<SweepPoint>,
}

/// Parses a comma-separated `--flag a,b,c` list. Unlike the scalar
/// [`arg_num`] fallback, a malformed entry is an error — silently
/// dropping it would shrink the sweep grid behind the user's back.
fn parse_list<T: std::str::FromStr + Copy>(
    args: &[String],
    flag: &str,
    default: &[T],
) -> Result<Vec<T>, String> {
    match arg_value(args, flag) {
        None => Ok(default.to_vec()),
        Some(v) => v
            .split(',')
            .map(|s| {
                let s = s.trim();
                s.parse().map_err(|_| format!("invalid {flag} entry '{s}'"))
            })
            .collect(),
    }
}

/// Creates `path`'s parent directory (and ancestors) if missing, so
/// report flags like `--out results/sweep.json` work from a fresh
/// checkout.
fn ensure_parent_dir(path: &str) -> Result<(), String> {
    match std::path::Path::new(path).parent() {
        Some(dir) if !dir.as_os_str().is_empty() => std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create '{}': {e}", dir.display())),
        _ => Ok(()),
    }
}

/// Fans the workload out over a CLB-count × bus-width grid, exploring
/// every point in parallel, and reports the Pareto-optimal
/// (area, bus, makespan) corners.
fn run_sweep(args: &[String]) -> ExitCode {
    let app = match arg_value(args, "--app") {
        Some(path) => match TaskGraph::load(&path) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => motion_detection_app(),
    };
    let grids = parse_list(args, "--clbs", &[400u32, 800, 1500, 2000, 3000, 5000])
        .and_then(|c| parse_list(args, "--bus", &[25.0f64, 50.0, 100.0]).map(|b| (c, b)));
    let (clbs_grid, bus_grid) = match grids {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if clbs_grid.is_empty() || bus_grid.is_empty() {
        eprintln!("error: empty --clbs or --bus grid");
        return ExitCode::FAILURE;
    }
    let iters: u64 = arg_num(args, "--iters", 5_000);
    let warmup: u64 = arg_num(args, "--warmup", iters / 5);
    let seed: u64 = arg_num(args, "--seed", 1);
    let lambda: f64 = arg_num(args, "--lambda", 0.5);
    let chains: usize = arg_num(args, "--chains", 1);
    let exchange_every: u64 = arg_num(args, "--exchange-every", 500);
    let threads: usize = arg_num(args, "--threads", 0);
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };

    // The grid, in deterministic order; each point gets its own master
    // seed so results do not depend on which worker picks it up.
    let mut grid: Vec<(usize, u32, f64)> = Vec::new();
    for &c in &clbs_grid {
        for &b in &bus_grid {
            grid.push((grid.len(), c, b));
        }
    }
    let n_points = grid.len();
    // Grid points are the primary unit of parallelism; threads left
    // over by a small grid go to each point's chains (harmless for
    // determinism — explore_parallel is thread-count invariant).
    let pool = threads.min(n_points).max(1);
    let inner_threads = (threads / pool).max(1);
    let work: Mutex<Vec<(usize, u32, f64)>> = Mutex::new(grid);
    let results: Mutex<Vec<(usize, SweepPoint)>> = Mutex::new(Vec::with_capacity(n_points));
    let failure: Mutex<Option<String>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..pool {
            scope.spawn(|| loop {
                // A failure anywhere aborts the remaining grid instead
                // of burning cores on a report that will be discarded.
                if failure.lock().expect("failure lock").is_some() {
                    break;
                }
                let Some((idx, clbs, bus)) = work.lock().expect("work queue lock").pop() else {
                    break;
                };
                let arch = match Architecture::builder("epicure-sweep")
                    .processor("arm922", 10.0)
                    .drlc("virtex-e", Clbs::new(clbs), Micros::new(22.5), 25.0)
                    .bus_rate(bus)
                    .build()
                {
                    Ok(a) => a,
                    Err(e) => {
                        *failure.lock().expect("failure lock") = Some(format!(
                            "invalid architecture ({clbs} CLBs, bus {bus}): {e}"
                        ));
                        break;
                    }
                };
                let popts = ParallelOptions {
                    base: ExploreOptions {
                        max_iterations: iters,
                        warmup_iterations: warmup,
                        seed: chain_seed(seed, idx + 1),
                        lambda,
                        ..ExploreOptions::default()
                    },
                    chains,
                    threads: inner_threads,
                    exchange_every,
                    warm_start: None,
                    front_exchange: false,
                };
                match explore_parallel(&app, &arch, &popts) {
                    Ok(p) => {
                        let point = SweepPoint {
                            clbs,
                            bus_bytes_per_micro: bus,
                            makespan_ms: p.evaluation.makespan.as_millis(),
                            n_contexts: p.evaluation.n_contexts,
                            n_hw_tasks: p.evaluation.n_hw_tasks,
                            clb_area: p.evaluation.clb_area.value(),
                            initial_reconfig_ms: p
                                .evaluation
                                .breakdown
                                .initial_reconfig
                                .as_millis(),
                            dynamic_reconfig_ms: p
                                .evaluation
                                .breakdown
                                .dynamic_reconfig
                                .as_millis(),
                            winner_chain: p.winner,
                            iterations: p.chains.iter().map(|c| c.run.iterations).sum(),
                            pareto: false,
                        };
                        results.lock().expect("results lock").push((idx, point));
                        eprintln!(
                            "point {clbs:>5} CLBs x bus {bus:>6.1}: {:.1} ms",
                            p.evaluation.makespan.as_millis()
                        );
                    }
                    Err(e) => {
                        *failure.lock().expect("failure lock") =
                            Some(format!("exploration failed at {clbs} CLBs, bus {bus}: {e}"));
                        break;
                    }
                }
            });
        }
    });

    if let Some(e) = failure.into_inner().expect("failure lock") {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let mut rows = results.into_inner().expect("results lock");
    rows.sort_by_key(|(idx, _)| *idx);
    let mut points: Vec<SweepPoint> = rows.into_iter().map(|(_, p)| p).collect();

    // Pareto front over minimized (clbs, bus, makespan), via the shared
    // archive: a point is on the front iff its objective triple
    // survives in the ParetoFront of the whole grid. (Duplicate
    // triples share one archive slot, so equal corners are all
    // flagged — exactly the old hand-rolled semantics.)
    let mut grid_front = ParetoFront::new();
    for p in &points {
        grid_front.insert(p.objectives());
    }
    for p in &mut points {
        p.pareto = grid_front.contains(&p.objectives());
    }

    println!("clbs   bus_B_per_us  makespan_ms  contexts  hw_tasks  clb_area  pareto");
    for p in &points {
        println!(
            "{:>5}  {:>12.1}  {:>11.2}  {:>8}  {:>8}  {:>8}  {}",
            p.clbs,
            p.bus_bytes_per_micro,
            p.makespan_ms,
            p.n_contexts,
            p.n_hw_tasks,
            p.clb_area,
            if p.pareto { "*" } else { "" }
        );
    }
    let front: Vec<String> = points
        .iter()
        .filter(|p| p.pareto)
        .map(|p| {
            format!(
                "({} CLBs, {} B/us, {:.1} ms)",
                p.clbs, p.bus_bytes_per_micro, p.makespan_ms
            )
        })
        .collect();
    println!("pareto front : {}", front.join(" "));

    let report = SweepReport {
        workload: app.name().to_owned(),
        seed,
        chains,
        iterations_per_point: iters,
        front_size: grid_front.len(),
        points,
    };
    let out = arg_value(args, "--out").unwrap_or_else(|| "results/sweep.json".into());
    if let Err(e) = ensure_parent_dir(&out) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = save_json(&out, &report) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    println!("report saved : {out}");
    if let Some(csv) = arg_value(args, "--csv") {
        let mut text = String::from(
            "clbs,bus_bytes_per_micro,makespan_ms,n_contexts,n_hw_tasks,clb_area,\
             initial_reconfig_ms,dynamic_reconfig_ms,winner_chain,iterations,pareto\n",
        );
        for p in &report.points {
            text.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{}\n",
                p.clbs,
                p.bus_bytes_per_micro,
                p.makespan_ms,
                p.n_contexts,
                p.n_hw_tasks,
                p.clb_area,
                p.initial_reconfig_ms,
                p.dynamic_reconfig_ms,
                p.winner_chain,
                p.iterations,
                p.pareto
            ));
        }
        if let Err(e) = ensure_parent_dir(&csv).and_then(|()| {
            std::fs::write(&csv, text).map_err(|e| format!("cannot write '{csv}': {e}"))
        }) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        println!("csv saved    : {csv}");
    }
    ExitCode::SUCCESS
}

fn run_simulate(args: &[String]) -> ExitCode {
    let (app, arch) = match load_models(args) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let Some(mapping_path) = arg_value(args, "--mapping") else {
        eprintln!("missing --mapping");
        return usage();
    };
    let mapping: Mapping = match std::fs::read_to_string(&mapping_path)
        .map_err(|e| e.to_string())
        .and_then(|s| serde_json::from_str(&s).map_err(|e| e.to_string()))
    {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error reading {mapping_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = if args.iter().any(|a| a == "--contention") {
        SimConfig::with_contention()
    } else {
        SimConfig::contention_free()
    };
    match (
        evaluate(&app, &arch, &mapping),
        simulate(&app, &arch, &mapping, &cfg),
    ) {
        (Ok(analytic), Ok(report)) => {
            println!("analytic makespan : {}", analytic.makespan);
            println!("simulated makespan: {}", report.makespan);
            println!(
                "bus               : {} transfers, busy {}",
                report.n_transfers, report.bus_busy
            );
            println!("reconfiguration   : {}", report.reconfig_total);
            ExitCode::SUCCESS
        }
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("simulation failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parses `--families`/`--arches` comma lists into registry entries,
/// erroring on unknown names (silently dropping one would shrink the
/// corpus behind the user's back).
fn parse_family_list<T, F: Fn(&str) -> Option<T>>(
    args: &[String],
    flag: &str,
    parse: F,
    default: Vec<T>,
) -> Result<Vec<T>, String> {
    match arg_value(args, flag) {
        None => Ok(default),
        Some(v) => v
            .split(',')
            .map(|s| {
                let s = s.trim();
                parse(s).ok_or_else(|| format!("unknown {flag} entry '{s}'"))
            })
            .collect(),
    }
}

/// `rdse corpus list|run` — the scenario-corpus batch runner with the
/// four-way differential oracle (see the `rdse-corpus` crate docs).
fn run_corpus_cmd(args: &[String]) -> ExitCode {
    match args.get(1).map(String::as_str) {
        Some("list") => {
            println!(
                "workload families : {}",
                family_names(&WorkloadFamily::defaults(), WorkloadFamily::name)
            );
            println!(
                "arch families     : {}",
                family_names(&ArchFamily::all(), ArchFamily::name)
            );
            println!("smoke corpus      :");
            for spec in smoke_corpus() {
                println!("  {}", spec.id());
            }
            ExitCode::SUCCESS
        }
        Some("run") => run_corpus_run(args),
        _ => usage(),
    }
}

fn family_names<T>(families: &[T], name: impl Fn(&T) -> &'static str) -> String {
    families.iter().map(name).collect::<Vec<_>>().join(", ")
}

fn run_corpus_run(args: &[String]) -> ExitCode {
    let smoke = args.iter().any(|a| a == "--smoke");
    // --smoke pins the scenario list AND the exploration knobs: the
    // checked-in golden snapshot is only reproducible at the pinned
    // configuration. Only --threads stays free (it never affects
    // results) — combining --smoke with a pinned knob is an error, not
    // a silent ignore.
    if smoke {
        const PINNED: [&str; 8] = [
            "--families",
            "--arches",
            "--seeds",
            "--iters",
            "--warmup",
            "--chains",
            "--exchange-every",
            "--walk-steps",
        ];
        if let Some(flag) = PINNED.iter().find(|f| args.iter().any(|a| &a == f)) {
            eprintln!(
                "error: {flag} conflicts with --smoke (the smoke subset and its \
                 exploration knobs are pinned to the golden snapshot; drop --smoke \
                 to customize the corpus)"
            );
            return ExitCode::FAILURE;
        }
    }
    let (specs, opts) = if smoke {
        (
            smoke_corpus(),
            CorpusOptions {
                threads: arg_num(args, "--threads", 0),
                ..CorpusOptions::default()
            },
        )
    } else {
        let lists = parse_family_list(
            args,
            "--families",
            WorkloadFamily::parse,
            WorkloadFamily::defaults(),
        )
        .and_then(|w| {
            parse_family_list(
                args,
                "--arches",
                ArchFamily::parse,
                ArchFamily::all().to_vec(),
            )
            .map(|a| (w, a))
        })
        .and_then(|(w, a)| parse_list(args, "--seeds", &[1u64, 2, 3]).map(|s| (w, a, s)));
        let (workloads, arches, seeds) = match lists {
            Ok(l) => l,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let defaults = CorpusOptions::default();
        (
            cross_corpus(&workloads, &arches, &seeds),
            CorpusOptions {
                iters: arg_num(args, "--iters", defaults.iters),
                warmup: arg_num(args, "--warmup", defaults.warmup),
                chains: arg_num(args, "--chains", defaults.chains),
                exchange_every: arg_num(args, "--exchange-every", defaults.exchange_every),
                threads: arg_num(args, "--threads", 0),
                walk_steps: arg_num(args, "--walk-steps", defaults.walk_steps),
            },
        )
    };
    if specs.is_empty() {
        eprintln!("error: empty corpus");
        return ExitCode::FAILURE;
    }

    let report = match run_corpus(&specs, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("corpus FAILED: {e}");
            return ExitCode::FAILURE;
        }
    };
    for r in &report.records {
        println!(
            "{:<40} {:>12.1} us  {:>2} ctx  {:>2} hw  oracle pass ({} moves)",
            r.id,
            r.makespan.value(),
            r.n_contexts,
            r.n_hw_tasks,
            r.oracle_moves_checked
        );
    }
    println!(
        "corpus: {} scenarios, all four-way oracles passed in {:?}",
        report.records.len(),
        report.elapsed
    );

    if let Some(out) = arg_value(args, "--out") {
        if let Err(e) = ensure_parent_dir(&out)
            .and_then(|()| std::fs::write(&out, report.ndjson()).map_err(|e| e.to_string()))
        {
            eprintln!("error: cannot write '{out}': {e}");
            return ExitCode::FAILURE;
        }
        println!("matrix saved : {out}");
    }
    if let Some(path) = arg_value(args, "--write-golden") {
        if let Err(e) = ensure_parent_dir(&path)
            .and_then(|()| std::fs::write(&path, report.golden_text()).map_err(|e| e.to_string()))
        {
            eprintln!("error: cannot write '{path}': {e}");
            return ExitCode::FAILURE;
        }
        println!("golden saved : {path}");
    }
    if let Some(path) = arg_value(args, "--golden") {
        let expected = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read golden '{path}': {e}");
                return ExitCode::FAILURE;
            }
        };
        match report.diff_golden(&expected) {
            Ok(()) => println!("golden check : {} matches", path),
            Err(e) => {
                eprintln!("golden check FAILED against {path}:\n{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// `rdse serve` — stand up the long-running exploration service (see
/// the `rdse-serve` crate docs for the protocol and limits).
fn run_serve(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--help") {
        println!(
            "usage: rdse serve [--host H] [--port P] [--workers N] [--max-frame-len B]\n\
             \x20                 [--max-tasks N] [--max-iters N] [--max-chains N]\n\
             \x20                 [--max-sessions N] [--read-timeout-ms N]\n\
             \x20                 [--store F.aof] [--store-sync always|interval:N|never]\n\
             \n\
             Serves exploration jobs over TCP (framed RPC and HTTP/1.1 on the same\n\
             port). --port 0 picks a free port; the bound address is printed on\n\
             stdout as 'rdse serve listening on HOST:PORT'. Stop it with\n\
             `rdse submit --addr HOST:PORT --shutdown`.\n\
             \n\
             --store persists every finished exploration to an append-only log and\n\
             answers repeat submissions from it: identical jobs return the archived\n\
             result bit-identically with no search, and new jobs over a known\n\
             (app, arch) pair warm-start from the best archived mapping.\n\
             --store-sync sets the fsync cadence (default: always)."
        );
        return ExitCode::SUCCESS;
    }
    let host = arg_value(args, "--host").unwrap_or_else(|| "127.0.0.1".into());
    let port: u16 = arg_num(args, "--port", 0);
    let workers: usize = arg_num(args, "--workers", 4);
    let defaults = Limits::default();
    let limits = Limits {
        max_frame_len: arg_num(args, "--max-frame-len", defaults.max_frame_len),
        max_tasks: arg_num(args, "--max-tasks", defaults.max_tasks),
        max_devices: arg_num(args, "--max-devices", defaults.max_devices),
        max_iters: arg_num(args, "--max-iters", defaults.max_iters),
        max_chains: arg_num(args, "--max-chains", defaults.max_chains),
        max_sessions: arg_num(args, "--max-sessions", defaults.max_sessions),
        read_timeout: std::time::Duration::from_millis(arg_num(
            args,
            "--read-timeout-ms",
            defaults.read_timeout.as_millis() as u64,
        )),
        write_timeout: defaults.write_timeout,
    };
    let store = arg_value(args, "--store").map(std::path::PathBuf::from);
    let store_sync = match arg_value(args, "--store-sync") {
        Some(spec) => match SyncPolicy::parse(&spec) {
            Some(p) => p,
            None => {
                eprintln!(
                    "error: --store-sync takes always, interval:N (N >= 1) or never, got '{spec}'"
                );
                return ExitCode::from(EXIT_USAGE);
            }
        },
        None => SyncPolicy::Always,
    };
    let server = match Server::bind(ServeConfig {
        host: host.clone(),
        port,
        workers,
        limits,
        store,
        store_sync,
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {host}:{port}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => {
            // CI and scripts parse this line for the bound port, so it
            // must reach the pipe before the accept loop blocks.
            println!("rdse serve listening on {addr} ({workers} workers)");
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("error: cannot read bound address: {e}");
            return ExitCode::FAILURE;
        }
    }
    match server.run() {
        Ok(()) => {
            println!("rdse serve: shut down cleanly");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: server failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `rdse store` — inspect and maintain a persistent result store
/// off-line (the serving path opens the same file via `--store`).
fn run_store(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--help") {
        println!(
            "usage: rdse store <stats|compact|verify> --path F.aof\n\
             \n\
             stats    replay the log read-only and report record, pair and byte\n\
             \x20        counts (a torn tail is reported, not repaired)\n\
             compact  atomically rewrite the log keeping the latest record per\n\
             \x20        key (temp file + rename; also repairs a torn tail)\n\
             verify   replay the log read-only; exit 0 if every record is intact,\n\
             \x20        1 naming the byte offset of the first damaged record"
        );
        return ExitCode::SUCCESS;
    }
    let sub = match args.get(1).map(String::as_str) {
        Some(s @ ("stats" | "compact" | "verify")) => s,
        Some(other) => {
            eprintln!(
                "error: unknown store subcommand '{other}' (expected stats, compact or verify)"
            );
            return ExitCode::from(EXIT_USAGE);
        }
        None => {
            eprintln!("error: missing store subcommand (expected stats, compact or verify)");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let Some(path) = arg_value(args, "--path") else {
        eprintln!("error: missing --path F.aof");
        return ExitCode::from(EXIT_USAGE);
    };
    match sub {
        "stats" => {
            let bytes = match std::fs::read(&path) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut archive = Archive::new();
            let report = scan(&bytes, |r| archive.insert(r));
            println!("store         : {path}");
            println!("file bytes    : {}", bytes.len());
            println!("raw records   : {}", report.records);
            println!(
                "live records  : {} ({} pair(s))",
                archive.len(),
                archive.pairs()
            );
            match &report.tail {
                Some(tail) => println!("tail          : torn ({tail})"),
                None => println!("tail          : clean"),
            }
            ExitCode::SUCCESS
        }
        "compact" => {
            let mut store = match ResultStore::open(&path, SyncPolicy::Always) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Some(tail) = &store.replay_report().tail {
                eprintln!("warning: torn tail skipped ({tail})");
            }
            match store.compact() {
                Ok(report) => {
                    println!(
                        "compacted     : {} -> {} record(s), {} -> {} bytes",
                        report.records_before,
                        report.records_after,
                        report.bytes_before,
                        report.bytes_after
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: compaction failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => match rdse::store::verify(&path) {
            Ok((report, file_len)) => match report.tail {
                Some(tail) => {
                    eprintln!(
                        "error: {path}: damaged record {tail} ({} intact record(s), {} of {file_len} bytes verified)",
                        report.records, report.bytes
                    );
                    ExitCode::FAILURE
                }
                None => {
                    println!(
                        "verified      : {} record(s), {} bytes, all checksums intact",
                        report.records, report.bytes
                    );
                    ExitCode::SUCCESS
                }
            },
            Err(e) => {
                eprintln!("error: {path}: {e}");
                ExitCode::FAILURE
            }
        },
    }
}

fn value_f64(v: &serde::Value, field: &str) -> Option<f64> {
    match v.get(field) {
        Some(serde::Value::F64(x)) => Some(*x),
        Some(serde::Value::I64(x)) => Some(*x as f64),
        Some(serde::Value::U64(x)) => Some(*x as f64),
        _ => None,
    }
}

fn value_u64(v: &serde::Value, field: &str) -> Option<u64> {
    match v.get(field) {
        Some(serde::Value::I64(x)) if *x >= 0 => Some(*x as u64),
        Some(serde::Value::U64(x)) => Some(*x),
        _ => None,
    }
}

fn value_str<'v>(v: &'v serde::Value, field: &str) -> Option<&'v str> {
    match v.get(field) {
        Some(serde::Value::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// Prints a served job result in the offline `explore` report shape,
/// including the bit-exact makespan line the CI identity check diffs.
fn print_submit_result(v: &serde::Value) {
    if let Some(job) = value_u64(v, "job") {
        println!("job           : {job}");
    }
    if let Some(mk) = value_f64(v, "makespan") {
        println!("best makespan : {mk:.1} us");
    }
    if let Some(bits) = value_str(v, "makespan_bits") {
        println!("makespan bits : {bits}");
    }
    if let (Some(ctx), Some(hw)) = (value_u64(v, "contexts"), value_u64(v, "hw_tasks")) {
        println!("contexts      : {ctx} | hardware tasks: {hw}");
    }
    if let Some(objective) = value_str(v, "objective") {
        println!("objective     : {objective}");
    }
    if let Some(serde::Value::Seq(front)) = v.get("front") {
        println!(
            "pareto front  : {} non-dominated point(s) (makespan_us, clb_area, reconfig_us, contexts)",
            front.len()
        );
        for m in front {
            println!(
                "  ({:.1}, {}, {:.1}, {})",
                value_f64(m, "makespan").unwrap_or(f64::NAN),
                value_u64(m, "clb_area").unwrap_or(0),
                value_f64(m, "reconfig").unwrap_or(f64::NAN),
                value_u64(m, "contexts").unwrap_or(0),
            );
        }
    }
    if let (Some(chains), Some(winner)) = (value_u64(v, "chains"), value_u64(v, "winner")) {
        println!("portfolio     : {chains} chains, winner {winner}");
    }
    if let Some(cache) = value_str(v, "cache") {
        println!("evaluator     : warm-arena cache {cache}");
    }
    if let Some(store) = value_str(v, "store") {
        if store != "off" {
            println!("result store  : {store}");
        }
    }
}

/// `rdse submit` — submit a job to (or probe / stop) a running
/// `rdse serve` instance.
fn run_submit(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--help") {
        println!(
            "usage: rdse submit --addr HOST:PORT (--app F.json | --builtin NAME | --workload FAM)\n\
             \x20                  (--arch F.json | --clbs N | --arch-family FAM)\n\
             \x20                  [--app-seed N] [--arch-seed N] [--objective SPEC] [--iters N]\n\
             \x20                  [--warmup N] [--seed N] [--chains K] [--exchange-every E] [--quiet]\n\
             \x20      rdse submit --addr HOST:PORT (--health | --shutdown | --get-job ID)\n\
             \n\
             Submits one exploration job over the framed RPC transport and streams\n\
             progress updates to stderr until the final result. Results are\n\
             bit-identical to `rdse explore` for the same models, seed and chains.\n\
             Malformed input (bad --objective, over-limit job) exits with code 2\n\
             and a named cause; transport and server failures exit with code 1."
        );
        return ExitCode::SUCCESS;
    }
    let Some(addr) = arg_value(args, "--addr") else {
        eprintln!("error: missing --addr HOST:PORT");
        return ExitCode::from(EXIT_USAGE);
    };
    let mut opts = ClientOptions::default();
    opts.max_frame_len = arg_num(args, "--max-frame-len", opts.max_frame_len);
    if args.iter().any(|a| a == "--health") {
        return match serve_client::health(&addr, &opts) {
            Ok(v) => {
                println!("{}", serde_json::to_string_pretty(&v).unwrap_or_default());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.iter().any(|a| a == "--shutdown") {
        return match serve_client::shutdown(&addr, &opts) {
            Ok(_) => {
                println!("server at {addr} acknowledged shutdown");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if let Some(id) = arg_value(args, "--get-job") {
        let Ok(id) = id.parse::<u64>() else {
            eprintln!("error: --get-job takes a numeric job id, got '{id}'");
            return ExitCode::from(EXIT_USAGE);
        };
        return match serve_client::get_job(&addr, id, &opts) {
            Ok(v) => {
                println!("{}", serde_json::to_string_pretty(&v).unwrap_or_default());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                if e.code.as_deref() == Some("unknown-job") {
                    ExitCode::from(EXIT_USAGE)
                } else {
                    ExitCode::FAILURE
                }
            }
        };
    }

    // Job submission. Inline models are validated locally (so a bad
    // file is a usage error here, not a server round-trip), and the
    // objective grammar is checked before connecting.
    let app = if let Some(path) = arg_value(args, "--app") {
        match TaskGraph::load(&path) {
            Ok(g) => AppSpec::Inline(g.to_value()),
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::from(EXIT_USAGE);
            }
        }
    } else if let Some(name) = arg_value(args, "--builtin") {
        AppSpec::Builtin(name)
    } else if let Some(family) = arg_value(args, "--workload") {
        AppSpec::Workload {
            family,
            seed: arg_num(args, "--app-seed", 1),
        }
    } else {
        eprintln!("error: missing application (--app F.json, --builtin NAME or --workload FAM)");
        return ExitCode::from(EXIT_USAGE);
    };
    let arch = if let Some(path) = arg_value(args, "--arch") {
        match Architecture::load(&path) {
            Ok(a) => ArchSpec::Inline(a.to_value()),
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::from(EXIT_USAGE);
            }
        }
    } else if let Some(clbs) = arg_value(args, "--clbs") {
        match clbs.parse::<u32>() {
            Ok(n) => ArchSpec::Clbs(n),
            Err(_) => {
                eprintln!("error: --clbs takes a CLB count, got '{clbs}'");
                return ExitCode::from(EXIT_USAGE);
            }
        }
    } else if let Some(family) = arg_value(args, "--arch-family") {
        ArchSpec::Family {
            family,
            seed: arg_num(args, "--arch-seed", 1),
        }
    } else {
        eprintln!("error: missing architecture (--arch F.json, --clbs N or --arch-family FAM)");
        return ExitCode::from(EXIT_USAGE);
    };
    let objective = arg_value(args, "--objective").unwrap_or_else(|| "makespan".into());
    if let Err(e) = Objective::parse_spec(&objective) {
        eprintln!("error: {}", e.replacen("objective", "--objective", 1));
        return ExitCode::from(EXIT_USAGE);
    }
    let spec = JobSpec {
        app,
        arch,
        objective,
        iters: arg_num(args, "--iters", 5_000),
        warmup: arg_num(args, "--warmup", 1_200),
        seed: arg_num(args, "--seed", 1),
        chains: arg_num(args, "--chains", 1),
        exchange_every: arg_num(args, "--exchange-every", 500),
    };
    let quiet = args.iter().any(|a| a == "--quiet");
    match serve_client::submit(&addr, &spec, &opts, |u| {
        if !quiet {
            if let (Some(seg), Some(best)) =
                (value_u64(u, "segment"), value_f64(u, "best_makespan"))
            {
                eprintln!(
                    "segment {seg:>4}: best {best:.1} us, front {}",
                    value_u64(u, "front_size").unwrap_or(0)
                );
            }
        }
    }) {
        Ok(result) => {
            print_submit_result(&result);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            if e.is_usage() {
                ExitCode::from(EXIT_USAGE)
            } else {
                ExitCode::FAILURE
            }
        }
    }
}

fn run_space(args: &[String]) -> ExitCode {
    let Some(app_path) = arg_value(args, "--app") else {
        eprintln!("missing --app");
        return usage();
    };
    let app = match TaskGraph::load(&app_path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let g = app.precedence_graph();
    match rdse::graph::count_linear_extensions(&g, None) {
        Some(count) => {
            println!(
                "{}: {} tasks, {} total orders",
                app.name(),
                app.n_tasks(),
                count
            );
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("too many nodes/ideals to count exactly");
            ExitCode::FAILURE
        }
    }
}
