//! The `rdse` command-line tool: generate benchmark models, explore
//! mappings, render schedules, and validate them by simulation.
//!
//! ```text
//! rdse generate <motion|figure1|layered> [--clbs N] [--seed N] [--dir D]
//! rdse explore  --app F.json --arch F.json [--iters N] [--warmup N]
//!               [--seed N] [--lambda X] [--gantt] [--save-mapping F]
//! rdse simulate --app F.json --arch F.json --mapping F.json [--contention]
//! rdse space    --app F.json
//! ```

use rdse::mapping::{evaluate, explore, ExploreOptions, GanttChart, Mapping};
use rdse::model::{Architecture, TaskGraph};
use rdse::sim::{simulate, SimConfig};
use rdse::workloads::{
    epicure_architecture, figure1_app, layered_dag, motion_detection_app, LayeredDagConfig,
};
use std::process::ExitCode;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn arg_num<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    arg_value(args, flag)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         rdse generate <motion|figure1|layered> [--clbs N] [--seed N] [--dir D]\n  \
         rdse explore  --app F.json --arch F.json [--iters N] [--warmup N] [--seed N] [--lambda X] [--gantt] [--save-mapping F]\n  \
         rdse simulate --app F.json --arch F.json --mapping F.json [--contention]\n  \
         rdse space    --app F.json"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "generate" => generate(&args),
        "explore" => run_explore(&args),
        "simulate" => run_simulate(&args),
        "space" => run_space(&args),
        _ => usage(),
    }
}

fn load_models(args: &[String]) -> Result<(TaskGraph, Architecture), String> {
    let app_path = arg_value(args, "--app").ok_or("missing --app")?;
    let arch_path = arg_value(args, "--arch").ok_or("missing --arch")?;
    let app = TaskGraph::load(&app_path).map_err(|e| format!("{app_path}: {e}"))?;
    let arch = Architecture::load(&arch_path).map_err(|e| format!("{arch_path}: {e}"))?;
    Ok((app, arch))
}

fn generate(args: &[String]) -> ExitCode {
    let kind = args.get(1).map(String::as_str).unwrap_or("motion");
    let clbs: u32 = arg_num(args, "--clbs", 2000);
    let seed: u64 = arg_num(args, "--seed", 1);
    let dir = arg_value(args, "--dir").unwrap_or_else(|| ".".into());
    let (app, name) = match kind {
        "motion" => (motion_detection_app(), "motion"),
        "figure1" => (figure1_app(), "figure1"),
        "layered" => (layered_dag(&LayeredDagConfig::default(), seed), "layered"),
        other => {
            eprintln!("unknown workload '{other}'");
            return usage();
        }
    };
    let arch = epicure_architecture(clbs);
    let app_path = format!("{dir}/{name}-app.json");
    let arch_path = format!("{dir}/{name}-arch.json");
    if let Err(e) = app.save(&app_path).and_then(|()| arch.save(&arch_path)) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {app_path} ({} tasks) and {arch_path} ({clbs} CLBs)",
        app.n_tasks()
    );
    ExitCode::SUCCESS
}

fn run_explore(args: &[String]) -> ExitCode {
    let (app, arch) = match load_models(args) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let opts = ExploreOptions {
        max_iterations: arg_num(args, "--iters", 5_000),
        warmup_iterations: arg_num(args, "--warmup", 1_200),
        seed: arg_num(args, "--seed", 1),
        lambda: arg_num(args, "--lambda", 0.5),
        ..ExploreOptions::default()
    };
    let outcome = match explore(&app, &arch, &opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("exploration failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "best makespan : {} ({} -> {:.1}% of initial)",
        outcome.evaluation.makespan,
        outcome.run.stop_description(),
        100.0 * outcome.run.best_cost / outcome.run.initial_cost
    );
    println!(
        "contexts      : {} | hardware tasks: {}/{}",
        outcome.evaluation.n_contexts,
        outcome.evaluation.n_hw_tasks,
        app.n_tasks()
    );
    println!(
        "breakdown     : reconfig {} + {} | comp/comm {}",
        outcome.evaluation.breakdown.initial_reconfig,
        outcome.evaluation.breakdown.dynamic_reconfig,
        outcome.evaluation.breakdown.computation_communication
    );
    println!("wall time     : {:?}", outcome.run.elapsed);
    if args.iter().any(|a| a == "--gantt") {
        let chart = GanttChart::extract(&app, &arch, &outcome.mapping, &outcome.evaluation);
        println!("{}", chart.render_ascii(&app, &arch, 100));
    }
    if let Some(path) = arg_value(args, "--save-mapping") {
        match serde_json::to_string_pretty(&outcome.mapping) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("error writing {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("mapping saved : {path}");
            }
            Err(e) => {
                eprintln!("error serializing mapping: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn run_simulate(args: &[String]) -> ExitCode {
    let (app, arch) = match load_models(args) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let Some(mapping_path) = arg_value(args, "--mapping") else {
        eprintln!("missing --mapping");
        return usage();
    };
    let mapping: Mapping = match std::fs::read_to_string(&mapping_path)
        .map_err(|e| e.to_string())
        .and_then(|s| serde_json::from_str(&s).map_err(|e| e.to_string()))
    {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error reading {mapping_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = if args.iter().any(|a| a == "--contention") {
        SimConfig::with_contention()
    } else {
        SimConfig::contention_free()
    };
    match (
        evaluate(&app, &arch, &mapping),
        simulate(&app, &arch, &mapping, &cfg),
    ) {
        (Ok(analytic), Ok(report)) => {
            println!("analytic makespan : {}", analytic.makespan);
            println!("simulated makespan: {}", report.makespan);
            println!(
                "bus               : {} transfers, busy {}",
                report.n_transfers, report.bus_busy
            );
            println!("reconfiguration   : {}", report.reconfig_total);
            ExitCode::SUCCESS
        }
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("simulation failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_space(args: &[String]) -> ExitCode {
    let Some(app_path) = arg_value(args, "--app") else {
        eprintln!("missing --app");
        return usage();
    };
    let app = match TaskGraph::load(&app_path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let g = app.precedence_graph();
    match rdse::graph::count_linear_extensions(&g, None) {
        Some(count) => {
            println!(
                "{}: {} tasks, {} total orders",
                app.name(),
                app.n_tasks(),
                count
            );
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("too many nodes/ideals to count exactly");
            ExitCode::FAILURE
        }
    }
}
