//! # rdse — design-space exploration for dynamically reconfigurable architectures
//!
//! A production-quality reproduction of *Miramond & Delosme, "Design
//! space exploration for dynamically reconfigurable architectures",
//! DATE 2005*: a tool that maps task-graph applications onto
//! processor + FPGA systems by **simultaneously** exploring HW/SW
//! spatial partitioning, temporal partitioning into run-time contexts,
//! scheduling, and per-task implementation selection, with an adaptive
//! (Lam-schedule) simulated annealing engine.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | module | contents |
//! |--------|----------|
//! | [`graph`] | DAG substrate: transitive closure, longest path, (max,+) closure with Woodbury updates, linear-extension counting |
//! | [`anneal`] | adaptive simulated annealing (Lam schedule), move-class controller with an optional deterministic UCB operator bandit, Pareto utilities (non-dominated rank, crowding distance, hypervolume), test problems |
//! | [`model`] | task graphs with area–time Pareto implementations; architectures (processor / DRLC / ASIC / bus) |
//! | [`mapping`] | the paper's core: solutions, search graph, moves m1–m5, evaluation, Gantt schedules, the resumable explorer and the parallel portfolio engine (`Explorer`, `explore_parallel`) |
//! | [`sim`] | discrete-event executor validating the analytic cost model |
//! | [`baseline`] | GA (Ben Chehida & Auguin style; scalar or NSGA-II selection), random search, hill climbing |
//! | [`workloads`] | the 28-task motion-detection benchmark, Fig. 1 example, random DAG generators |
//! | [`corpus`] | scenario families (workload × architecture), batch runner, four-way differential verification oracle |
//! | [`serve`] | long-running exploration service: framed RPC + HTTP transports, sharded worker pool with warm evaluator arenas, streaming Pareto-front updates |
//! | [`store`] | persistent result store: content-addressed append-only archive with exact/dominated O(lookup) answers and warm-start seeding |
//!
//! ## Quickstart
//!
//! ```
//! use rdse::mapping::{explore, ExploreOptions};
//! use rdse::workloads::{epicure_architecture, motion_detection_app, MOTION_DEADLINE};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let app = motion_detection_app();          // 28 tasks, 76.4 ms in software
//! let arch = epicure_architecture(2000);     // ARM922 + 2000-CLB Virtex-E
//!
//! let outcome = explore(&app, &arch, &ExploreOptions {
//!     max_iterations: 5_000,
//!     warmup_iterations: 1_200,              // the Fig. 2 protocol
//!     seed: 1,
//!     ..ExploreOptions::default()
//! })?;
//!
//! assert!(outcome.evaluation.makespan <= MOTION_DEADLINE);
//! println!(
//!     "{} in {} contexts",
//!     outcome.evaluation.makespan,
//!     outcome.evaluation.n_contexts
//! );
//! # Ok(())
//! # }
//! ```
//!
//! ## Parallel portfolio exploration
//!
//! [`mapping::explore_parallel`] runs K annealing chains across worker
//! threads with per-chain RNG streams (SplitMix64 on `seed ^ chain`)
//! and periodic best-solution exchange at deterministic segment
//! barriers. For a fixed `(seed, chains)` the result is bit-identical
//! regardless of the thread count; the total iteration budget is split
//! evenly across chains so portfolio and single-chain runs compare at
//! equal cost:
//!
//! ```
//! use rdse::mapping::{explore_parallel, ExploreOptions, ParallelOptions};
//! use rdse::workloads::{epicure_architecture, motion_detection_app};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let app = motion_detection_app();
//! let arch = epicure_architecture(2000);
//! let portfolio = explore_parallel(&app, &arch, &ParallelOptions {
//!     base: ExploreOptions { max_iterations: 2_000, warmup_iterations: 400,
//!                            seed: 1, ..ExploreOptions::default() },
//!     chains: 4,
//!     threads: 0, // all cores; never changes the result
//!     exchange_every: 250,
//!     warm_start: None, // opt-in archive seeding; None = bit-identical cold run
//!     front_exchange: false, // opt-in diversity injection from the portfolio front
//! })?;
//! assert_eq!(portfolio.chains.len(), 4);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable scenarios and `rdse-bench` for the
//! binaries regenerating every figure and table of the paper.

pub use rdse_anneal as anneal;
pub use rdse_baseline as baseline;
pub use rdse_corpus as corpus;
pub use rdse_graph as graph;
pub use rdse_mapping as mapping;
pub use rdse_model as model;
pub use rdse_serve as serve;
pub use rdse_sim as sim;
pub use rdse_store as store;
pub use rdse_workloads as workloads;
