//! Offline stand-in for `serde`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal serde replacement. Instead of the real
//! crate's visitor-based data model, values are serialized through an
//! intermediate [`Value`] tree that `serde_json` renders and parses.
//! The `#[derive(Serialize, Deserialize)]` macros (re-exported from
//! the companion `serde_derive` crate) generate the same external
//! JSON shapes as upstream serde for the type forms this workspace
//! uses: named-field structs, newtype/tuple structs, and externally
//! tagged enums with unit, tuple, and struct variants.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A serialized value: the common currency between `Serialize`
/// implementations and data formats (in practice, `serde_json`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX`).
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Key-value map preserving insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] cannot be decoded into the
/// requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        DeError(m.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

/// Types that can render themselves as a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the serialization data model.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Attempts to decode `value` into `Self`.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError::msg(format!("{n} out of range")))?,
                    // `as` saturates, so bound-check before converting:
                    // 2^63 is exactly representable, i64::MAX is not.
                    Value::F64(f)
                        if f.fract() == 0.0
                            && *f >= -(2f64.powi(63))
                            && *f < 2f64.powi(63) =>
                    {
                        *f as i64
                    }
                    other => return Err(DeError::msg(format!(
                        "expected integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(n).map_err(|_| DeError::msg(format!(
                    "{n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(n) => Value::I64(n),
                    Err(_) => Value::U64(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: u64 = match v {
                    Value::I64(n) => u64::try_from(*n)
                        .map_err(|_| DeError::msg(format!("{n} out of range")))?,
                    Value::U64(n) => *n,
                    Value::F64(f)
                        if f.fract() == 0.0 && *f >= 0.0 && *f < 2f64.powi(64) =>
                    {
                        *f as u64
                    }
                    other => return Err(DeError::msg(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(n).map_err(|_| DeError::msg(format!(
                    "{n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

ser_de_signed!(i8, i16, i32, i64, isize);
ser_de_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::I64(n) => Ok(*n as f64),
            Value::U64(n) => Ok(*n as f64),
            // serde_json writes non-finite floats as null.
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::msg(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::msg(format!("expected single char, got {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| {
                    let key = match k.to_value() {
                        Value::Str(s) => s,
                        other => format!("{other:?}"),
                    };
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(items) => {
                        let mut it = items.iter();
                        Ok(($(
                            {
                                let _ = $idx;
                                $name::from_value(it.next().ok_or_else(|| {
                                    DeError::msg("tuple too short")
                                })?)?
                            },
                        )+))
                    }
                    other => Err(DeError::msg(format!(
                        "expected sequence for tuple, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

tuple_impls! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-7i64).to_value()), Ok(-7));
        assert_eq!(f64::from_value(&3.5f64.to_value()), Ok(3.5));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
    }

    #[test]
    fn vec_and_option_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()), Ok(v));
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u32>::from_value(&Value::I64(5)), Ok(Some(5)));
    }

    #[test]
    fn map_lookup() {
        let m = Value::Map(vec![("a".into(), Value::I64(1))]);
        assert_eq!(m.get("a"), Some(&Value::I64(1)));
        assert_eq!(m.get("b"), None);
    }
}
