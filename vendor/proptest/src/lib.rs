//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API used by this workspace's
//! property tests: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map` / `prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], [`bool::weighted`], `any::<f64>()`, [`Just`],
//! and `prop_assert!` / `prop_assert_eq!`.
//!
//! Unlike real proptest there is **no shrinking**: a failing case is
//! reported with its case index and the fixed per-case RNG seed, which
//! is enough to reproduce it deterministically (the runner derives the
//! seed from the test's case counter, never from ambient entropy).

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// RNG handed to strategies while generating one test case.
pub type TestRng = StdRng;

/// Runner configuration (`cases` = number of generated inputs).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Overrides the number of cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy (API-compatibility helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A heap-allocated, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
    (A:0, B:1, C:2, D:3, E:4, F:5)
}

/// `any::<T>()`: the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(core::marker::PhantomData)
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct ArbitraryStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mostly finite values across many magnitudes, with occasional
        // special values — mirrors proptest exercising edge cases.
        match rng.next_u32() % 16 {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 0.0,
            4 => -0.0,
            _ => {
                let mantissa = rand::Rng::random::<f64>(rng) * 2.0 - 1.0;
                let exp = rand::Rng::random_range(rng, -60i32..60) as f64;
                mantissa * exp.exp2()
            }
        }
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Lengths acceptable to [`vec()`]: a fixed size or a range.
    pub trait IntoSizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rand::Rng::random_range(rng, self.clone())
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rand::Rng::random_range(rng, self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// Output of [`vec()`].
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::{Strategy, TestRng};

    /// Strategy yielding `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted(p)
    }

    /// Output of [`weighted`].
    pub struct Weighted(f64);

    impl Strategy for Weighted {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rand::Rng::random::<f64>(rng) < self.0
        }
    }
}

pub mod strategy {
    //! Re-exports mirroring proptest's module layout.
    pub use super::{BoxedStrategy, Just, Strategy};
}

pub mod prelude {
    //! One-stop import for property tests.
    pub use super::collection;
    pub use super::{any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Builds the per-case RNG. Public for the macro, so consumer crates
/// need no direct `rand` dependency.
pub fn rng_from_seed(seed: u64) -> TestRng {
    TestRng::seed_from_u64(seed)
}

/// Derives the per-case RNG seed. Public for the macro; stable so
/// failures are reproducible run-to-run.
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(format!(
                "{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), l, r
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Declares property tests. Each function runs `cases` times with
/// inputs drawn from the given strategies; failures report the case
/// index and seed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let seed = $crate::case_seed(stringify!($name), case);
                    let mut proptest_rng = $crate::rng_from_seed(seed);
                    $(
                        let $arg = $crate::Strategy::sample(&($strat), &mut proptest_rng);
                    )*
                    let outcome: ::core::result::Result<(), ::std::string::String> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(message) = outcome {
                        panic!(
                            "proptest case {case} (seed {seed:#x}) failed:\n{message}"
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_sample_in_bounds() {
        let mut rng = <TestRng as ::rand::SeedableRng>::seed_from_u64(1);
        let s = (2usize..=10).prop_flat_map(|n| (Just(n), collection::vec(0.0f64..1.0, n)));
        for _ in 0..100 {
            let (n, v) = s.sample(&mut rng);
            assert!((2..=10).contains(&n));
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn weighted_bool_is_biased() {
        let mut rng = <TestRng as ::rand::SeedableRng>::seed_from_u64(2);
        let s = crate::bool::weighted(0.9);
        let trues = (0..1000).filter(|_| s.sample(&mut rng)).count();
        assert!(trues > 800, "expected ~900 trues, got {trues}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_runnable_tests(x in 0u32..100, y in 0.0f64..1.0) {
            prop_assert!(x < 100);
            prop_assert!((0.0..1.0).contains(&y), "y out of range: {}", y);
            prop_assert_eq!(x, x);
            prop_assert_ne!(y, y + 1.0);
        }
    }

    proptest! {
        #[test]
        fn default_config_also_works(v in collection::vec(any::<f64>(), 0..8)) {
            prop_assert!(v.len() < 8);
        }
    }
}
