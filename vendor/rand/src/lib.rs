//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the exact slice of the rand 0.9 surface it uses:
//! [`RngCore`], [`Rng`] (`random`, `random_range`, `random_bool`),
//! [`SeedableRng`] and [`rngs::StdRng`]. The generator behind
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — not
//! bit-compatible with upstream rand's ChaCha12, but fully
//! deterministic for a given seed, which is the property the
//! exploration engine and the test suite rely on.

/// A source of uniformly distributed random bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an RNG's raw bits
/// (the stand-in for rand's `StandardUniform` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Types uniformly samplable from a half-open or inclusive interval
/// (the stand-in for rand's `SampleUniform`).
pub trait SampleUniform: Copy {
    /// Samples from `[lo, hi)` when `inclusive` is false, `[lo, hi]`
    /// when true. Panics on an empty interval.
    fn sample_interval<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

/// Ranges that can produce a uniformly distributed sample.
pub trait SampleRange<T> {
    /// Draws one value; panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(rng, *self.start(), *self.end(), true)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-domain range: every bit pattern is valid.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add((rng.next_u64() % span) as $t)
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64);
                    lo.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                }
                let unit = <$t as Standard>::sample(rng);
                let v = lo + unit * (hi - lo);
                if !inclusive && v >= hi {
                    // `lo + unit*(hi-lo)` can round up to `hi`; keep the
                    // half-open contract by stepping one ulp back down.
                    hi.next_down().max(lo)
                } else {
                    v
                }
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Convenience methods layered over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the RNG from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, expanded with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// Deterministic generator used wherever upstream code names
    /// `rand::rngs::StdRng` (xoshiro256++ here, ChaCha12 upstream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point of xoshiro.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Alias: the workspace does not distinguish small/std generators.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.random_range(0..10);
            assert!(v < 10);
            let f: f64 = rng.random_range(1.0..2.0);
            assert!((1.0..2.0).contains(&f));
            let i: u32 = rng.random_range(5..=9);
            assert!((5..=9).contains(&i));
            let unit: f64 = rng.random();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn half_open_float_range_excludes_upper_bound() {
        // Even when rounding would land on `hi`, the sampled value
        // must stay strictly below it.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100_000 {
            let v: f64 = rng.random_range(0.25..0.65);
            assert!((0.25..0.65).contains(&v), "sampled {v}");
        }
        // Degenerate nearly-empty range: lo and hi adjacent floats.
        let lo = 1.0f64;
        let hi = lo.next_up();
        for _ in 0..100 {
            let v: f64 = rng.random_range(lo..hi);
            assert_eq!(v, lo);
        }
    }

    use super::RngCore;

    #[test]
    fn works_through_dyn_and_generic_bounds() {
        fn takes_core<R: RngCore>(rng: &mut R) -> u64 {
            rng.random_range(0..100u64)
        }
        let mut rng = StdRng::seed_from_u64(9);
        assert!(takes_core(&mut rng) < 100);
    }
}
