//! Offline stand-in for `criterion`.
//!
//! Implements the macro/type surface this workspace's benches use —
//! [`Criterion`], [`BenchmarkId`], `bench_function`,
//! `benchmark_group` / `bench_with_input` / `finish`,
//! [`criterion_group!`], [`criterion_main!`] and `Bencher::iter` —
//! over a simple wall-clock measurement loop: a short warm-up,
//! then `sample_size` timed batches, reporting min/median/mean per
//! benchmark to stdout. No statistical analysis, plots, or baseline
//! comparison; the point is that `cargo bench` compiles and produces
//! honest relative numbers offline.
//!
//! Two environment knobs support CI perf tracking:
//!
//! * `RDSE_BENCH_JSON=<path>` — append one JSON object per completed
//!   benchmark (name, min/median/mean in ns, sample count, iterations
//!   per sample) to `<path>`, newline-delimited, so a workflow can
//!   upload the run as an artifact;
//! * `RDSE_BENCH_SAMPLES=<n>` — override every benchmark's sample
//!   count (floor 2), to trade precision for wall-clock in smoke runs.

use std::fmt;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.default_sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (upstream finalizes reports here; a no-op).
    pub fn finish(&mut self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark label (accepts `&str`, `String`,
/// or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The label text.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    /// Duration of the sample currently being measured.
    elapsed: Duration,
    /// Iterations to run per sample (tuned during warm-up).
    iters: u64,
}

impl Bencher {
    /// Times `routine`, running it enough times for a stable reading.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let sample_size = std::env::var("RDSE_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(sample_size, |n| n.max(2));

    // Warm-up: find an iteration count taking roughly >= 1 ms, capped
    // so very slow benchmarks still complete in reasonable time.
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iters: 1,
    };
    loop {
        f(&mut bencher);
        if bencher.elapsed >= Duration::from_millis(1) || bencher.iters >= 1 << 20 {
            break;
        }
        bencher.iters *= 2;
    }

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        f(&mut bencher);
        samples.push(bencher.elapsed.as_secs_f64() / bencher.iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "bench {label:<50} min {:>12} median {:>12} mean {:>12} ({} samples x {} iters)",
        format_time(min),
        format_time(median),
        format_time(mean),
        samples.len(),
        bencher.iters,
    );
    append_json_record(label, min, median, mean, samples.len(), bencher.iters);
}

/// When `RDSE_BENCH_JSON` names a file, appends this benchmark's result
/// as one newline-delimited JSON object, so separate bench binaries of
/// one `cargo bench` invocation accumulate into a single artifact.
fn append_json_record(label: &str, min: f64, median: f64, mean: f64, samples: usize, iters: u64) {
    let Ok(path) = std::env::var("RDSE_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    // Labels are ASCII identifiers with separators; escape the two JSON
    // specials anyway so the record can never be malformed.
    let name = label.replace('\\', "\\\\").replace('"', "\\\"");
    let record = format!(
        "{{\"name\":\"{name}\",\"min_ns\":{:.1},\"median_ns\":{:.1},\"mean_ns\":{:.1},\
         \"samples\":{samples},\"iters_per_sample\":{iters}}}\n",
        min * 1e9,
        median * 1e9,
        mean * 1e9,
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| file.write_all(record.as_bytes()));
    if let Err(e) = written {
        eprintln!("warning: cannot append bench record to {path}: {e}");
    }
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn groups_run_parameterized_benches() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let n = 5usize;
        group.bench_with_input(BenchmarkId::new("param", n), &n, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        group.finish();
    }

    #[test]
    fn format_time_scales() {
        assert!(format_time(5e-9).ends_with("ns"));
        assert!(format_time(5e-6).ends_with("us"));
        assert!(format_time(5e-3).ends_with("ms"));
        assert!(format_time(5.0).ends_with('s'));
    }
}
