//! Offline stand-in for `criterion`.
//!
//! Implements the macro/type surface this workspace's benches use —
//! [`Criterion`], [`BenchmarkId`], `bench_function`,
//! `benchmark_group` / `bench_with_input` / `finish`,
//! [`criterion_group!`], [`criterion_main!`] and `Bencher::iter` —
//! over a simple wall-clock measurement loop: a short warm-up,
//! then `sample_size` timed batches, reporting min/median/mean per
//! benchmark to stdout. No statistical analysis, plots, or baseline
//! comparison; the point is that `cargo bench` compiles and produces
//! honest relative numbers offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.default_sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (upstream finalizes reports here; a no-op).
    pub fn finish(&mut self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark label (accepts `&str`, `String`,
/// or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The label text.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    /// Duration of the sample currently being measured.
    elapsed: Duration,
    /// Iterations to run per sample (tuned during warm-up).
    iters: u64,
}

impl Bencher {
    /// Times `routine`, running it enough times for a stable reading.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: find an iteration count taking roughly >= 1 ms, capped
    // so very slow benchmarks still complete in reasonable time.
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iters: 1,
    };
    loop {
        f(&mut bencher);
        if bencher.elapsed >= Duration::from_millis(1) || bencher.iters >= 1 << 20 {
            break;
        }
        bencher.iters *= 2;
    }

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        f(&mut bencher);
        samples.push(bencher.elapsed.as_secs_f64() / bencher.iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "bench {label:<50} min {:>12} median {:>12} mean {:>12} ({} samples x {} iters)",
        format_time(min),
        format_time(median),
        format_time(mean),
        samples.len(),
        bencher.iters,
    );
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn groups_run_parameterized_benches() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let n = 5usize;
        group.bench_with_input(BenchmarkId::new("param", n), &n, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        group.finish();
    }

    #[test]
    fn format_time_scales() {
        assert!(format_time(5e-9).ends_with("ns"));
        assert!(format_time(5e-6).ends_with("us"));
        assert!(format_time(5e-3).ends_with("ms"));
        assert!(format_time(5.0).ends_with('s'));
    }
}
