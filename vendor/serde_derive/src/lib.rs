//! Offline stand-in for `serde_derive`.
//!
//! Generates `Serialize`/`Deserialize` impls against the vendored
//! value-tree `serde` crate. The input item is parsed directly from
//! the token stream (no `syn`/`quote` available offline), which
//! restricts the supported forms to what this workspace actually
//! derives: non-generic named-field structs, tuple/newtype structs,
//! unit structs, and externally tagged enums with unit, tuple, and
//! struct variants. `#[serde(...)]` attributes are not supported and
//! produce a compile error rather than being silently ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree flavor).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` (value-tree flavor).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let code = match mode {
                Mode::Serialize => gen_serialize(&item),
                Mode::Deserialize => gen_deserialize(&item),
            };
            code.parse().expect("generated impl must tokenize")
        }
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error message must tokenize"),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i)?;

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stand-in derive does not support generic type `{name}`"
        ));
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                Ok(Item::NamedStruct { name, fields })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream())?;
                Ok(Item::TupleStruct { name, arity })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("unsupported struct body for `{name}`: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream())?;
                Ok(Item::Enum { name, variants })
            }
            other => Err(format!("expected enum body for `{name}`, got {other:?}")),
        },
        kw => Err(format!("cannot derive serde traits for `{kw}` items")),
    }
}

/// Advances past leading `#[...]` attributes and a `pub` /
/// `pub(...)` visibility qualifier. Rejects `#[serde(...)]`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> Result<(), String> {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    let body = g.stream().to_string();
                    if body.starts_with("serde") {
                        return Err(format!(
                            "serde stand-in derive does not support #[{body}] attributes"
                        ));
                    }
                    *i += 2;
                } else {
                    return Err("malformed attribute".to_string());
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return Ok(()),
        }
    }
}

/// Skips one type expression, stopping at a top-level `,`.
/// Tracks `<...>` nesting; bracketed/parenthesized types arrive as
/// single groups, so angle brackets are the only depth to count.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0usize;
    while let Some(tt) = tokens.get(*i) {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i)?;
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after `{field}`, got {other:?}")),
        }
        skip_type(&tokens, &mut i);
        i += 1; // past the `,` (or end)
        fields.push(field);
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> Result<usize, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut arity = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i)?;
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        i += 1; // past the `,` (or end)
        arity += 1;
    }
    Ok(arity)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i)?;
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            return Err(format!(
                "explicit discriminant on variant `{name}` is not supported"
            ));
        }
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            other => return Err(format!("expected `,` after variant, got {other:?}")),
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn named_fields_to_map(fields: &[String], accessor: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&{accessor}{f}))"))
        .collect();
    format!("::serde::Value::Map(vec![{}])", entries.join(", "))
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let map = named_fields_to_map(fields, "self.");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {map} }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Seq(vec![{}])\n\
                     }}\n\
                 }}",
                items.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Map(vec![\
                                ({vname:?}.to_string(), ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Map(vec![\
                                    ({vname:?}.to_string(), \
                                     ::serde::Value::Seq(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let map = named_fields_to_map(fields, "");
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::Value::Map(vec![\
                                    ({vname:?}.to_string(), {map})]),",
                                fields.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn named_fields_from_map(fields: &[String], src: &str, ctx: &str) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value({src}.get({f:?}).ok_or_else(|| \
                     ::serde::DeError::msg(concat!(\"missing field `\", {f:?}, \"` in \", {ctx:?})))?)?,"
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::NamedStruct { name, fields } => {
            let inits = named_fields_from_map(fields, "v", name);
            format!(
                "match v {{\n\
                     ::serde::Value::Map(_) => Ok({name} {{\n{inits}\n}}),\n\
                     other => Err(::serde::DeError::msg(format!(\n\
                         \"expected map for {name}, got {{other:?}}\"))),\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Seq(items) if items.len() == {arity} => \
                         Ok({name}({})),\n\
                     other => Err(::serde::DeError::msg(format!(\n\
                         \"expected {arity}-element sequence for {name}, got {{other:?}}\"))),\n\
                 }}",
                items.join(", ")
            )
        }
        Item::UnitStruct { name } => format!("{{ let _ = v; Ok({name}) }}"),
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("::serde::Value::Str(s) if s == {vname:?} => Ok({name}::{vname}),")
                })
                .collect();
            let tag_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "{vname:?} => Ok({name}::{vname}(\
                                ::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!("::serde::Deserialize::from_value(&items[{k}])?")
                                })
                                .collect();
                            Some(format!(
                                "{vname:?} => match inner {{\n\
                                     ::serde::Value::Seq(items) if items.len() == {n} => \
                                         Ok({name}::{vname}({})),\n\
                                     other => Err(::serde::DeError::msg(format!(\n\
                                         \"expected {n}-element sequence for {name}::{vname}, \
                                          got {{other:?}}\"))),\n\
                                 }},",
                                items.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits = named_fields_from_map(fields, "inner", vname);
                            Some(format!(
                                "{vname:?} => match inner {{\n\
                                     ::serde::Value::Map(_) => Ok({name}::{vname} {{\n{inits}\n}}),\n\
                                     other => Err(::serde::DeError::msg(format!(\n\
                                         \"expected map for {name}::{vname}, got {{other:?}}\"))),\n\
                                 }},",
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     {}\n\
                     ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                         let (tag, inner) = &entries[0];\n\
                         match tag.as_str() {{\n\
                             {}\n\
                             other => Err(::serde::DeError::msg(format!(\n\
                                 \"unknown variant `{{other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => Err(::serde::DeError::msg(format!(\n\
                         \"expected externally tagged {name}, got {{other:?}}\"))),\n\
                 }}",
                unit_arms.join("\n"),
                tag_arms.join("\n")
            )
        }
    };
    let name = match item {
        Item::NamedStruct { name, .. }
        | Item::TupleStruct { name, .. }
        | Item::UnitStruct { name }
        | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
