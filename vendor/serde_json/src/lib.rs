//! Offline stand-in for `serde_json`.
//!
//! Renders and parses JSON against the vendored `serde` crate's
//! [`Value`] tree. Supports the `to_string` / `to_string_pretty` /
//! `from_str` entry points used by the rdse workspace, with upstream
//! serde_json conventions where they matter: non-finite floats
//! serialize as `null`, maps preserve insertion order, and parsing
//! accepts arbitrary whitespace and `\uXXXX` escapes (including
//! surrogate pairs).

pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt;

/// Serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(Error::new)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            write_delimited(out, indent, depth, '[', ']', items.len(), |out, i| {
                write_value(out, &items[i], indent, depth + 1);
            })
        }
        Value::Map(entries) => {
            write_delimited(out, indent, depth, '{', '}', entries.len(), |out, i| {
                let (k, v) = &entries[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            })
        }
    }
}

fn write_delimited(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    n: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if n == 0 {
        out.push(close);
        return;
    }
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        // Upstream serde_json serializes non-finite floats as null.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Match serde_json: integral floats keep a trailing `.0`.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&f.to_string());
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Maximum container nesting, as in upstream serde_json: the parser
/// recurses per level, so unbounded depth would overflow the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.nested(Self::array),
            b'{' => self.nested(Self::object),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn nested(
        &mut self,
        parse: impl FnOnce(&mut Self) -> Result<Value, Error>,
    ) -> Result<Value, Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(Error::new(format!(
                "recursion limit exceeded ({MAX_DEPTH} levels) at byte {}",
                self.pos
            )));
        }
        let v = parse(self)?;
        self.depth -= 1;
        Ok(v)
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, got `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, got `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(Error::new(
                                            "expected low surrogate after high surrogate",
                                        ));
                                    }
                                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(code)
                                        .ok_or_else(|| Error::new("invalid surrogate pair"))?
                                } else {
                                    return Err(Error::new("lone surrogate in string"));
                                }
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (the input came from &str,
                    // so slicing at char boundaries is safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error::new(format!("invalid number `{text}`: {e}")))
        } else if let Ok(n) = text.parse::<i64>() {
            Ok(Value::I64(n))
        } else if let Ok(n) = text.parse::<u64>() {
            Ok(Value::U64(n))
        } else {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error::new(format!("invalid number `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5e3").unwrap(), 1500.0);
        assert_eq!(from_str::<String>(r#""aA\n""#).unwrap(), "aA\n");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![vec![1u32], vec![2, 3]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1],[2,3]]");
        assert_eq!(from_str::<Vec<Vec<u32>>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_is_reparsable() {
        let v = vec![1u32, 2];
        let json = to_string_pretty(&v).unwrap();
        assert!(json.contains('\n'));
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);
    }

    #[test]
    fn nonfinite_serializes_as_null_and_reads_back_nan() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn float_text_roundtrips_exactly() {
        for f in [0.1, 76.4, 1e-12, 123456.789, f64::MAX] {
            let json = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), f);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("4x").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn rejects_out_of_range_float_as_integer() {
        assert!(from_str::<i64>("1e300").is_err());
        assert!(from_str::<u64>("1e300").is_err());
        assert!(from_str::<i64>("1e10").is_ok());
    }

    #[test]
    fn rejects_invalid_surrogate_pairs() {
        assert!(from_str::<String>(r#""\uD800A""#).is_err());
        assert!(from_str::<String>(r#""\uD800""#).is_err());
        assert!(from_str::<String>(r#""\uDC00""#).is_err());
        // A valid pair still decodes (U+1F600).
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "\u{1F600}");
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let deep = "[".repeat(100_000);
        let err = from_str::<Vec<u32>>(&deep).unwrap_err();
        assert!(err.to_string().contains("recursion limit"));
        // Depth just under the limit still parses.
        let ok = format!("{}{}", "[".repeat(100), "]".repeat(100));
        assert!(from_str::<Value>(&ok).is_ok());
    }
}
